"""Parallel batch compilation over a process pool.

Compilation is a pure, CPU-bound function of ``(program, config,
profiles)`` — see :func:`repro.core.pipeline.compile_ir` — which makes
it embarrassingly parallel across the harness grid and trivially
memoizable.  :class:`BatchCompiler` exploits both:

* every job is first resolved against the :class:`CompileCache` (when
  one is attached), so warm re-runs never recompile;
* cache misses fan out over a ``multiprocessing`` process pool
  (processes, not threads: the pipeline never releases the GIL), with
  results re-assembled in job order so the caller sees deterministic
  output regardless of completion order;
* a per-job timeout, a crashed worker, or any worker-side exception
  degrades that one job to in-process compilation — the batch always
  completes, a flaky pool can only cost time, never results.

Worker-side telemetry objects travel back over the pipe and are merged
into the driver's parent :class:`~repro.telemetry.Telemetry`, so one
trace covers a whole parallel batch.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass, field

from ..analysis.frequency import BranchProfile
from ..core.config import SignExtConfig
from ..core.pipeline import CompileResult, compile_ir
from ..ir.function import Program
from ..telemetry import Telemetry
from ..telemetry.metrics import MetricsRegistry
from .cache import CacheEntry, CompileCache
from .fingerprint import cache_key


@dataclass
class CompileJob:
    """One cell of work: compile ``program`` under ``config``.

    ``program_fingerprint`` optionally carries a precomputed IR digest
    (the harness hashes each workload once for its twelve variants).
    ``trace_id`` is the request-scoped correlation token minted by the
    serving layer; it labels any worker-side telemetry so the span
    forest that travels back over the pipe stays attributable to the
    originating request (it never affects compilation or cache keys).
    ``simulate_crash``/``simulate_delay`` are test hooks honoured only
    inside pool workers — never in-process — so the fallback paths can
    be exercised deterministically.
    """

    label: str
    program: Program
    config: SignExtConfig
    profiles: dict[str, BranchProfile] | None = None
    collect_telemetry: bool = False
    program_fingerprint: str | None = None
    trace_id: str | None = None
    simulate_crash: bool = field(default=False, repr=False)
    simulate_delay: float = field(default=0.0, repr=False)


def _compile_job_in_worker(job: CompileJob) -> CompileResult:
    """Pool worker entry point (module-level so it pickles by name)."""
    if job.simulate_crash:  # test hook: die without cleanup
        os._exit(13)
    if job.simulate_delay:
        time.sleep(job.simulate_delay)
    telemetry = Telemetry(label=job.trace_id or job.label) \
        if job.collect_telemetry else None
    # The job arrived over a pickle boundary, so this process owns the
    # program outright — no defensive clone needed.
    return compile_ir(job.program, job.config, job.profiles,
                      clone=False, telemetry=telemetry)


class BatchCompiler:
    """Cache-aware, pool-backed driver for lists of compile jobs.

    Parameters
    ----------
    jobs:
        Pool width.  ``1`` (the default) never spawns processes.
    cache:
        Optional :class:`CompileCache` consulted before any compilation
        and updated after every miss.
    timeout:
        Per-job seconds before a pool result is abandoned and the job
        is recompiled in-process.  ``None`` waits forever.
    metrics:
        Telemetry registry receiving the ``driver.pool.*`` counters.
    telemetry:
        Optional parent :class:`Telemetry`; per-job telemetry collected
        in workers is merged into it.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: CompileCache | None = None,
        timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.metrics = metrics if metrics is not None else (
            cache.metrics if cache is not None else MetricsRegistry()
        )
        self.telemetry = telemetry
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "BatchCompiler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API ----------------------------------------------------------

    def compile_one(self, job: CompileJob) -> CompileResult:
        return self.compile_batch([job])[0]

    def compile_batch(self, batch: list[CompileJob]) -> list[CompileResult]:
        """Compile every job; results come back in submission order."""
        self.metrics.counter("driver.pool.jobs").inc(len(batch))
        results: list[CompileResult | None] = [None] * len(batch)
        keys: list[str | None] = [None] * len(batch)
        pending: list[int] = []

        for index, job in enumerate(batch):
            keys[index] = self._job_key(job)
            hit = self._from_cache(job, keys[index])
            if hit is not None:
                results[index] = hit
            else:
                pending.append(index)

        if self.jobs > 1 and len(pending) > 1:
            self._compile_parallel(batch, pending, keys, results)
        else:
            for index in pending:
                result = self._compile_inline(batch[index])
                results[index] = self._finish(batch[index], keys[index],
                                              result)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # -- cache ---------------------------------------------------------------

    def _job_key(self, job: CompileJob) -> str | None:
        # Telemetry wants real compile-time spans and decisions, which a
        # cache hit cannot supply; such jobs bypass the cache entirely.
        if self.cache is None or job.collect_telemetry:
            return None
        return cache_key(job.program, job.config, job.profiles,
                         program_fingerprint=job.program_fingerprint)

    def _from_cache(self, job: CompileJob,
                    key: str | None) -> CompileResult | None:
        if key is None or self.cache is None:
            return None
        entry = self.cache.get(key)
        if entry is None:
            return None
        return CompileResult(
            program=entry.program,
            config=job.config,
            timing=entry.timing(),
            function_stats=entry.function_stats,
        )

    def _finish(self, job: CompileJob, key: str | None,
                result: CompileResult) -> CompileResult:
        if key is not None and self.cache is not None:
            self.cache.put(key, CacheEntry(
                program=result.program,
                function_stats=result.function_stats,
                timing_seconds=dict(result.timing.seconds),
            ))
        if self.telemetry is not None and result.telemetry is not None:
            self.telemetry.merge(result.telemetry)
        return result

    # -- execution -----------------------------------------------------------

    def _compile_inline(self, job: CompileJob) -> CompileResult:
        """Serial / fallback path; ignores the worker-only test hooks."""
        self.metrics.counter("driver.pool.compiled", mode="inline").inc()
        telemetry = (Telemetry(label=job.trace_id or job.label)
                     if job.collect_telemetry else None)
        return compile_ir(job.program, job.config, job.profiles,
                          clone=True, telemetry=telemetry)

    def _compile_parallel(
        self,
        batch: list[CompileJob],
        pending: list[int],
        keys: list[str | None],
        results: list[CompileResult | None],
    ) -> None:
        futures = {}
        for index in pending:
            future = self._submit(batch[index])
            if future is None:  # pool refused (broken and un-recreatable)
                results[index] = self._finish(
                    batch[index], keys[index],
                    self._fallback(batch[index], "submit"))
            else:
                futures[index] = future

        for index in sorted(futures):
            job = batch[index]
            try:
                result = futures[index].result(timeout=self.timeout)
            except concurrent.futures.TimeoutError:
                result = self._fallback(job, "timeout")
            except concurrent.futures.process.BrokenProcessPool:
                self._executor = None  # next submit builds a fresh pool
                result = self._fallback(job, "crash")
            except Exception:
                result = self._fallback(job, "error")
            else:
                self.metrics.counter("driver.pool.compiled",
                                     mode="worker").inc()
            results[index] = self._finish(job, keys[index], result)

    def _submit(self, job: CompileJob):
        try:
            if self._executor is None:
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.jobs
                )
            return self._executor.submit(_compile_job_in_worker, job)
        except Exception:
            self._executor = None
            return None

    def _fallback(self, job: CompileJob, reason: str) -> CompileResult:
        self.metrics.counter("driver.pool.fallbacks", reason=reason).inc()
        return self._compile_inline(job)

    # -- inspection ----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Pool + cache counter snapshot for ``--stats`` and tests.

        Keys are sorted so two identical runs dump identical JSON.
        """
        out: dict[str, int] = {}
        for family in ("driver.pool.jobs", "driver.pool.compiled",
                       "driver.pool.fallbacks"):
            out.update(self.metrics.counter_family(family))
        if self.cache is not None:
            out.update(self.cache.stats())
        return dict(sorted(out.items()))
