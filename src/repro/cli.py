"""Command-line driver: compile, optimize, run, and inspect J32 programs.

Usage::

    python -m repro run program.j32            # compile + execute
    python -m repro run program.j32 --telemetry out.json
    python -m repro ir program.j32             # dump optimized IR
    python -m repro asm program.j32 --machine ppc64
    python -m repro variants program.j32       # all 12 table rows
    python -m repro bench huffman              # one workload sweep
    python -m repro trace program.j32 --out trace.json   # about://tracing

Every optimized execution is checked against the unoptimized gold run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .core import VARIANTS, compile_program
from .frontend import compile_source
from .interp import Interpreter
from .ir import format_program
from .machine import MACHINES
from .machine.costs import count_cycles
from .machine.lower import lower_function
from .telemetry import Telemetry


def _load(path: str):
    source = pathlib.Path(path).read_text()
    return compile_source(source, pathlib.Path(path).stem)


def _common_args(parser: argparse.ArgumentParser,
                 telemetry: bool = False) -> None:
    parser.add_argument("--variant", default="new algorithm (all)",
                        choices=sorted(VARIANTS),
                        help="optimization variant (a Table 1/2 row)")
    parser.add_argument("--machine", default="ia64",
                        choices=sorted(MACHINES), help="target traits")
    parser.add_argument("--fuel", type=int, default=100_000_000,
                        help="interpreter step budget")
    if telemetry:
        parser.add_argument("--telemetry", default=None, metavar="OUT.JSON",
                            help="write the full telemetry document "
                                 "(spans, metrics, decision log) here")


def _make_telemetry(args: argparse.Namespace) -> Telemetry | None:
    if getattr(args, "telemetry", None) is None:
        return None
    return Telemetry(label=pathlib.Path(args.file).stem)


def _finish_telemetry(args: argparse.Namespace,
                      telemetry: Telemetry | None) -> None:
    if telemetry is None:
        return
    telemetry.write_json(args.telemetry)
    print(f"[telemetry written to {args.telemetry}]")


def cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.file)
    traits = MACHINES[args.machine]
    gold = Interpreter(program, mode="ideal", fuel=args.fuel).run()
    config = VARIANTS[args.variant].with_traits(traits)
    telemetry = _make_telemetry(args)
    compiled = compile_program(program, config, telemetry=telemetry)
    run = Interpreter(
        compiled.program, traits=traits, fuel=args.fuel,
        metrics=telemetry.metrics if telemetry is not None else None,
    ).run()
    if run.observable() != gold.observable():
        print("ERROR: optimized behaviour diverged from gold run",
              file=sys.stderr)
        return 1
    cycles = count_cycles(compiled.program, run, traits)
    print(f"result    : {run.ret_value}")
    print(f"checksum  : {run.checksum:#018x} (verified against gold)")
    print(f"steps     : {run.steps}")
    print(f"extends   : 32-bit {run.extend_counts[32]}, "
          f"16-bit {run.extend_counts[16]}, 8-bit {run.extend_counts[8]}")
    print(f"cycles    : {cycles.total:.0f} modelled "
          f"({cycles.extend_cycles:.0f} in sign extensions)")
    _finish_telemetry(args, telemetry)
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    program = _load(args.file)
    traits = MACHINES[args.machine]
    config = VARIANTS[args.variant].with_traits(traits)
    telemetry = _make_telemetry(args)
    compiled = compile_program(program, config, telemetry=telemetry)
    print(format_program(compiled.program))
    _finish_telemetry(args, telemetry)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Compile + execute under full telemetry; write a Chrome trace."""
    program = _load(args.file)
    traits = MACHINES[args.machine]
    config = VARIANTS[args.variant].with_traits(traits)
    telemetry = Telemetry(label=pathlib.Path(args.file).stem)
    compiled = compile_program(program, config, telemetry=telemetry)
    run = Interpreter(compiled.program, traits=traits, fuel=args.fuel,
                      metrics=telemetry.metrics).run()

    out = pathlib.Path(args.out)
    with open(out, "w") as handle:
        json.dump(telemetry.tracer.to_chrome_trace(), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    span_count = sum(1 for _ in telemetry.tracer.walk())
    decisions = telemetry.decisions
    print(f"trace     : {out} ({span_count} spans; load in "
          "about://tracing or ui.perfetto.dev)")
    print(f"decisions : {len(decisions)} candidates "
          f"({len(decisions.eliminated())} eliminated, "
          f"{len(decisions.kept())} kept)")
    print(f"extends   : {compiled.static_extend_count} static after "
          f"compile, {run.extend_counts[32]} executed (32-bit)")
    if args.full is not None:
        telemetry.write_json(args.full)
        print(f"full      : {args.full} (spans + metrics + decision log)")
    return 0


def cmd_asm(args: argparse.Namespace) -> int:
    program = _load(args.file)
    traits = MACHINES[args.machine]
    config = VARIANTS[args.variant].with_traits(traits)
    compiled = compile_program(program, config)
    for func in compiled.program.functions.values():
        code = lower_function(func, traits)
        print(code.text)
        print()
    return 0


def cmd_variants(args: argparse.Namespace) -> int:
    program = _load(args.file)
    traits = MACHINES[args.machine]
    gold = Interpreter(program, mode="ideal", fuel=args.fuel).run()
    baseline = None
    print(f"{'variant':30s}{'dyn ext32':>12s}{'% of base':>12s}"
          f"{'cycles':>14s}")
    for name, config in VARIANTS.items():
        compiled = compile_program(program, config.with_traits(traits))
        run = Interpreter(compiled.program, traits=traits,
                          fuel=args.fuel).run()
        if run.observable() != gold.observable():
            print(f"{name:30s}  BEHAVIOUR DIVERGED", file=sys.stderr)
            return 1
        cycles = count_cycles(compiled.program, run, traits)
        if baseline is None:
            baseline = run.extends32 or 1
        print(f"{name:30s}{run.extends32:>12d}"
              f"{100 * run.extends32 / baseline:>11.2f}%"
              f"{cycles.total:>14.0f}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .harness import (
        export_json,
        format_dynamic_count_table,
        run_workload,
    )
    from .workloads import JBYTEMARK, SPECJVM98, get_workload

    if args.workload not in JBYTEMARK + SPECJVM98:
        print(f"unknown workload {args.workload!r}; available: "
              + ", ".join(JBYTEMARK + SPECJVM98), file=sys.stderr)
        return 1
    collect = args.telemetry is not None
    results = run_workload(get_workload(args.workload),
                           collect_telemetry=collect)
    print(format_dynamic_count_table(
        [results], f"Dynamic 32-bit sign extensions: {args.workload}"
    ))
    if args.json:
        export_json([results], args.json)
        print(f"\n[json written to {args.json}]")
    if collect:
        document = {
            "workload": args.workload,
            "variants": {
                name: cell.telemetry
                for name, cell in results.cells.items()
            },
        }
        with open(args.telemetry, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[telemetry written to {args.telemetry}]")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run a whole suite and write tables, figures, and JSON."""
    import pathlib as _pathlib

    from .harness import (
        export_json,
        format_dynamic_count_table,
        format_percent_figure,
        format_performance_figure,
        format_timing_table,
        run_suite,
    )
    from .workloads import jbytemark_workloads, specjvm98_workloads

    suites = {
        "jbytemark": jbytemark_workloads,
        "specjvm98": specjvm98_workloads,
    }
    out_dir = _pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for suite_name in (args.suite,) if args.suite else tuple(suites):
        results = run_suite(suites[suite_name]())
        sections = [
            format_dynamic_count_table(
                results, f"Dynamic 32-bit sign extensions ({suite_name})"
            ),
            format_percent_figure(
                results, f"Residual extensions, % of baseline ({suite_name})"
            ),
            format_performance_figure(
                results, f"Modelled run-time improvement ({suite_name})"
            ),
            format_timing_table(results),
        ]
        text_path = out_dir / f"{suite_name}.txt"
        text_path.write_text("\n\n".join(sections) + "\n")
        export_json(results, str(out_dir / f"{suite_name}.json"))
        print(f"wrote {text_path} and {suite_name}.json")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Effective Sign Extension Elimination (PLDI 2002) — "
                    "compile, optimize, and measure J32 programs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="compile and execute")
    run_parser.add_argument("file")
    _common_args(run_parser, telemetry=True)
    run_parser.set_defaults(fn=cmd_run)

    ir_parser = subparsers.add_parser("ir", help="dump optimized IR")
    ir_parser.add_argument("file")
    _common_args(ir_parser, telemetry=True)
    ir_parser.set_defaults(fn=cmd_ir)

    trace_parser = subparsers.add_parser(
        "trace", help="compile + run under full telemetry; write a "
                      "Chrome about://tracing JSON"
    )
    trace_parser.add_argument("file")
    trace_parser.add_argument("--out", default="trace.json",
                              help="Chrome trace_event output path")
    trace_parser.add_argument("--full", default=None, metavar="OUT.JSON",
                              help="also write the full telemetry "
                                   "document (metrics + decision log)")
    _common_args(trace_parser)
    trace_parser.set_defaults(fn=cmd_trace)

    asm_parser = subparsers.add_parser(
        "asm", help="dump assembly-flavoured lowering"
    )
    asm_parser.add_argument("file")
    _common_args(asm_parser)
    asm_parser.set_defaults(fn=cmd_asm)

    variants_parser = subparsers.add_parser(
        "variants", help="run all 12 algorithm variants"
    )
    variants_parser.add_argument("file")
    _common_args(variants_parser)
    variants_parser.set_defaults(fn=cmd_variants)

    bench_parser = subparsers.add_parser(
        "bench", help="sweep one named benchmark workload"
    )
    bench_parser.add_argument("workload")
    bench_parser.add_argument("--json", default=None,
                              help="also write results as JSON")
    bench_parser.add_argument("--telemetry", default=None,
                              metavar="OUT.JSON",
                              help="collect + write per-variant telemetry")
    bench_parser.set_defaults(fn=cmd_bench)

    report_parser = subparsers.add_parser(
        "report", help="run a whole suite; write tables, figures, JSON"
    )
    report_parser.add_argument("--suite", default=None,
                               choices=["jbytemark", "specjvm98"],
                               help="one suite (default: both)")
    report_parser.add_argument("--out", default="report",
                               help="output directory")
    report_parser.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. piping into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
