"""Command-line driver: compile, optimize, run, and inspect J32 programs.

Usage::

    python -m repro run program.j32            # compile + execute
    python -m repro run program.j32 --telemetry out.json
    python -m repro ir program.j32             # dump optimized IR
    python -m repro asm program.j32 --machine ppc64
    python -m repro variants program.j32       # all 12 table rows
    python -m repro compile a.j32 b.j32 --jobs 2 --cache
    python -m repro bench huffman --jobs 2 --cache
    python -m repro profile huffman --heatmap hot.html   # hot-block profile
    python -m repro trace program.j32 --out trace.json   # about://tracing
    python -m repro fuzz --seeds 1000 --jobs 4           # differential fuzz
    python -m repro perf record                          # append to perf history
    python -m repro perf compare --against perf/baseline.jsonl \
                                 --fail-on-regression 10%
    python -m repro perf report --out perf-report.html   # SVG dashboard

Every subcommand builds one :class:`repro.CompileOptions` from its
flags (`CompileOptions.from_cli_args`) and goes through the
:mod:`repro.api` facade; ``--jobs N`` fans compilation out over worker
processes and ``--cache`` reuses prior compilations from the
content-addressed cache (``--cache-dir``, default ``~/.cache/repro``).

Every optimized execution is checked against the unoptimized gold run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from . import api
from .core import DEFAULT_VARIANT, VARIANTS
from .core.config import CompileOptions
from .frontend import compile_source
from .frontend.errors import SourceError
from .ir import format_program
from .machine import MACHINES
from .machine.lower import lower_function
from .telemetry import Telemetry


def _load(path: str):
    source = pathlib.Path(path).read_text()
    return compile_source(source, pathlib.Path(path).stem)


def _common_args(parser: argparse.ArgumentParser, *,
                 telemetry: bool = False, driver: bool = False) -> None:
    parser.add_argument("--variant", default=DEFAULT_VARIANT,
                        choices=sorted(VARIANTS),
                        help="optimization variant (a Table 1/2 row)")
    parser.add_argument("--machine", default="ia64",
                        choices=sorted(MACHINES), help="target traits")
    parser.add_argument("--fuel", type=int, default=100_000_000,
                        help="interpreter step budget")
    if telemetry:
        parser.add_argument("--telemetry", default=None, metavar="OUT.JSON",
                            help="write the full telemetry document "
                                 "(spans, metrics, decision log) here")
    if driver:
        _driver_args(parser)


def _engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", default=None,
                        choices=["closure", "reference", "codegen", "both"],
                        help="execution engine: pre-translated closure "
                             "code (default), the reference interpreter, "
                             "generated Python code with superinstruction "
                             "fusion, or all three with a parity "
                             "cross-check")


def _driver_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("batch driver")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="compile over N worker processes")
    group.add_argument("--cache", action="store_true",
                       help="reuse compilations from the compile cache")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache location (default ~/.cache/repro)")
    group.add_argument("--cache-max-bytes", type=int, default=None,
                       metavar="N",
                       help="byte budget for the on-disk cache tier "
                            "(oldest entries evicted; also honours "
                            "$REPRO_CACHE_MAX_BYTES)")
    group.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-job pool timeout before in-process "
                            "fallback")
    group.add_argument("--stats", default=None, metavar="OUT.JSON",
                       help="write driver cache/pool counters here")


def _finish_telemetry(args: argparse.Namespace,
                      telemetry: Telemetry | None) -> None:
    if telemetry is None or getattr(args, "telemetry", None) is None:
        return
    telemetry.write_json(args.telemetry)
    print(f"[telemetry written to {args.telemetry}]")


def _finish_stats(args: argparse.Namespace, stats: dict) -> None:
    if getattr(args, "stats", None):
        with open(args.stats, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[driver stats written to {args.stats}]")


def cmd_run(args: argparse.Namespace) -> int:
    options = CompileOptions.from_cli_args(args)
    try:
        outcome = api.run(_load(args.file), options)
    except api.SoundnessError:
        print("ERROR: optimized behaviour diverged from gold run",
              file=sys.stderr)
        return 1
    print(f"result    : {outcome.ret_value}")
    print(f"checksum  : {outcome.checksum:#018x} (verified against gold)")
    print(f"steps     : {outcome.steps}")
    print(f"extends   : 32-bit {outcome.extend_counts[32]}, "
          f"16-bit {outcome.extend_counts[16]}, "
          f"8-bit {outcome.extend_counts[8]}")
    print(f"cycles    : {outcome.cycles.total:.0f} modelled "
          f"({outcome.cycles.extend_cycles:.0f} in sign extensions)")
    _finish_telemetry(args, outcome.telemetry)
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    from .workloads import JBYTEMARK, SPECJVM98, get_workload

    options = CompileOptions.from_cli_args(args)
    if args.file in JBYTEMARK + SPECJVM98:
        source = get_workload(args.file).program()
    else:
        source = _load(args.file)
    compiled = api.compile(source, options)
    if getattr(args, "emit_python", False):
        from .interp import generate_source, load_layout_profiles
        from .interp.layout import program_layouts

        layouts: dict = {}
        if options.layout_profile:
            layouts = program_layouts(
                compiled.program,
                load_layout_profiles(options.layout_profile),
            )
        traits = options.traits()
        for name, func in compiled.program.functions.items():
            print(generate_source(func, ideal=False, traits=traits,
                                  layout=layouts.get(name)))
    else:
        print(format_program(compiled.program))
    _finish_telemetry(args, compiled.telemetry)
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Batch-compile files through the cache-aware parallel driver."""
    from .driver import CompileJob

    options = CompileOptions.from_cli_args(args)
    config = options.config()
    jobs = []
    for path in args.files:
        program = _load(path)
        jobs.append(CompileJob(label=program.name, program=program,
                               config=config))
    with api.driver_from_options(options) as driver:
        results = driver.compile_batch(jobs)
        stats = driver.stats()
    for path, compiled in zip(args.files, results):
        print(f"{path:30s} extends {compiled.static_extend_count:>5d}  "
              f"eliminated {compiled.total_eliminated:>5d}  "
              f"compile {compiled.timing.total()*1000:>8.2f} ms")
    if options.cache:
        print(f"[cache: {stats.get('hits', 0)} hits, "
              f"{stats.get('misses', 0)} misses]")
    _finish_stats(args, stats)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Compile + execute under full telemetry; write a Chrome trace."""
    from .core.pipeline import compile_ir
    from .interp import Interpreter

    program = _load(args.file)
    traits = MACHINES[args.machine]
    config = VARIANTS[args.variant].with_traits(traits)
    telemetry = Telemetry(label=pathlib.Path(args.file).stem)
    compiled = compile_ir(program, config, telemetry=telemetry)
    run = Interpreter(compiled.program, traits=traits, fuel=args.fuel,
                      metrics=telemetry.metrics).run()

    out = pathlib.Path(args.out)
    with open(out, "w") as handle:
        json.dump(telemetry.tracer.to_chrome_trace(), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    span_count = sum(1 for _ in telemetry.tracer.walk())
    decisions = telemetry.decisions
    print(f"trace     : {out} ({span_count} spans; load in "
          "about://tracing or ui.perfetto.dev)")
    print(f"decisions : {len(decisions)} candidates "
          f"({len(decisions.eliminated())} eliminated, "
          f"{len(decisions.kept())} kept)")
    print(f"extends   : {compiled.static_extend_count} static after "
          f"compile, {run.extend_counts[32]} executed (32-bit)")
    if args.full is not None:
        telemetry.write_json(args.full)
        print(f"full      : {args.full} (spans + metrics + decision log)")
    return 0


def cmd_asm(args: argparse.Namespace) -> int:
    options = CompileOptions.from_cli_args(args)
    traits = options.traits()
    compiled = api.compile(_load(args.file), options)
    for func in compiled.program.functions.values():
        code = lower_function(func, traits)
        print(code.text)
        print()
    return 0


def cmd_variants(args: argparse.Namespace) -> int:
    from .interp import Interpreter
    from .machine.costs import count_cycles

    program = _load(args.file)
    traits = MACHINES[args.machine]
    gold = Interpreter(program, mode="ideal", fuel=args.fuel).run()
    baseline = None
    print(f"{'variant':30s}{'dyn ext32':>12s}{'% of base':>12s}"
          f"{'cycles':>14s}")
    for name, config in VARIANTS.items():
        compiled = api.compile(program, config=config.with_traits(traits))
        run = Interpreter(compiled.program, traits=traits,
                          fuel=args.fuel).run()
        if run.observable() != gold.observable():
            print(f"{name:30s}  BEHAVIOUR DIVERGED", file=sys.stderr)
            return 1
        cycles = count_cycles(compiled.program, run, traits)
        if baseline is None:
            baseline = run.extends32 or 1
        print(f"{name:30s}{run.extends32:>12d}"
              f"{100 * run.extends32 / baseline:>11.2f}%"
              f"{cycles.total:>14.0f}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .harness import export_json, format_dynamic_count_table
    from .workloads import JBYTEMARK, SPECJVM98

    if args.workload not in JBYTEMARK + SPECJVM98:
        print(f"unknown workload {args.workload!r}; available: "
              + ", ".join(JBYTEMARK + SPECJVM98), file=sys.stderr)
        return 1
    options = CompileOptions.from_cli_args(args)
    suite = api.bench([args.workload], options=options)
    results = suite.workload(args.workload)
    print(format_dynamic_count_table(
        [results], f"Dynamic 32-bit sign extensions: {args.workload}"
    ))
    if args.json:
        export_json([results], args.json)
        print(f"\n[json written to {args.json}]")
    if options.cache:
        print(f"[cache: {suite.cache_hits} hits, "
              f"{suite.cache_misses} misses]")
    if options.profile_dir:
        print(f"[profile artifacts written under {options.profile_dir}]")
    if args.telemetry is not None:
        document = {
            "workload": args.workload,
            "variants": {
                name: cell.telemetry
                for name, cell in results.cells.items()
            },
        }
        with open(args.telemetry, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[telemetry written to {args.telemetry}]")
    _finish_stats(args, suite.driver_stats)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one workload (or ``.j32`` file) and render the views."""
    from .profile import (
        format_annotated_ir,
        format_flamegraph,
        format_profile_summary,
        render_heatmap_html,
    )
    from .workloads import JBYTEMARK, SPECJVM98, get_workload

    options = CompileOptions.from_cli_args(args)
    if args.target in JBYTEMARK + SPECJVM98:
        source = get_workload(args.target)
    elif pathlib.Path(args.target).exists():
        source = _load(args.target)
    else:
        print(f"unknown workload or file {args.target!r}; workloads: "
              + ", ".join(JBYTEMARK + SPECJVM98), file=sys.stderr)
        return 1
    outcome = api.profile(source, options)
    prof = outcome.profile

    print(format_profile_summary(prof))
    if outcome.artifact is not None:
        print(f"[profile artifact written to {outcome.artifact}]")
    if args.ir:
        print()
        print(format_annotated_ir(outcome.compile.program, prof))
    if args.flame:
        with open(args.flame, "w") as handle:
            handle.write(format_flamegraph(prof) + "\n")
        print(f"[collapsed stacks written to {args.flame} — feed to any "
              "flamegraph tool]")
    if args.heatmap:
        with open(args.heatmap, "w", encoding="utf-8") as handle:
            handle.write(render_heatmap_html(
                [prof], title=f"repro profile: {prof.workload or prof.program}"
            ))
        print(f"[heatmap written to {args.heatmap} — self-contained, "
              "open in any browser]")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run a differential fuzzing campaign (see docs/FUZZING.md)."""
    from .fuzz import CampaignConfig

    config = CampaignConfig(
        seeds=args.seeds,
        seed_start=args.seed_start,
        jobs=args.jobs,
        time_budget=args.time_budget,
        corpus_dir=args.corpus_dir,
        variants=tuple(args.variant) if args.variant else tuple(VARIANTS),
        machines=tuple(args.machines),
        fuel=args.fuel,
        reduce=args.reduce,
        inject_bug=args.inject_bug,
        replay_only=args.replay,
        max_divergences=args.max_divergences,
        engine=args.engine or "closure",
        profile_dir=args.profile_dir,
    )
    telemetry = (Telemetry(label="fuzz-campaign")
                 if args.telemetry is not None else None)
    result = api.fuzz_campaign(config, telemetry=telemetry)

    cells = len(config.cell_configs())
    print(f"corpus    : {result.corpus_dir} "
          f"({result.regressions_checked} witnesses replayed, "
          f"{result.regressions_failing} still failing)")
    if not args.replay:
        print(f"seeds     : {result.seeds_run} fuzzed "
              f"({result.skipped_seeds} skipped), "
              f"{cells} cells each, {result.cells_checked} cells checked")
    print(f"duration  : {result.duration:.2f}s"
          + (" (time budget exhausted)" if result.budget_exhausted else ""))
    if result.divergences:
        kinds = ", ".join(f"{kind}: {count}" for kind, count
                          in sorted(result.divergence_kinds().items()))
        print(f"DIVERGED  : {len(result.divergences)} new witnesses "
              f"({kinds})")
        for witness in result.divergences:
            ratio = witness.reduction_ratio()
            shrink = (f", reduced to {100 * ratio:.0f}% "
                      f"({len(witness.reduced_source)} bytes)"
                      if ratio is not None else "")
            print(f"  seed {witness.seed:>6d}  {witness.variant} / "
                  f"{witness.machine}  [{witness.kind}] "
                  f"{len(witness.source)} bytes{shrink}")
    else:
        print("divergence: none")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[campaign report written to {args.json}]")
    _finish_telemetry(args, telemetry)
    return 0 if result.ok else 1


def cmd_perf_record(args: argparse.Namespace) -> int:
    """Run the fixed perf grid and append records to the history."""
    from .perf import HistoryStore, PerfRecorder, record_grid

    options = CompileOptions.from_cli_args(args)
    store = HistoryStore(args.history)
    recorder = PerfRecorder(store, source="cli")
    variants = list(VARIANTS) if args.all_variants else args.variants
    summary = record_grid(
        args.workloads,
        engines=args.engines,
        variants=variants,
        options=options,
        repeat=args.repeat,
        recorder=recorder,
    )
    print(f"recorded  : {summary['recorded']} records "
          f"({summary['deduplicated']} deduplicated) over "
          f"{summary['cells']} cells x {summary['repeat']} repeats")
    print(f"run id    : {recorder.run_id}")
    print(f"history   : {store.path}")
    return 0


def cmd_perf_compare(args: argparse.Namespace) -> int:
    """Compare the latest recorded run against a baseline."""
    from .perf import (
        HistoryStore,
        compare_records,
        format_compare,
        load_jsonl,
        parse_threshold,
    )

    store = HistoryStore(args.history)
    runs = store.latest_runs(2)
    if not runs:
        print(f"no perf records in {store.path}; run "
              "`repro perf record` first", file=sys.stderr)
        return 2
    current = runs[0]
    if args.against:
        baseline = load_jsonl(args.against)
        if not baseline:
            print(f"no baseline records in {args.against}",
                  file=sys.stderr)
            return 2
        baseline_name = args.against
    elif len(runs) > 1:
        baseline = runs[1]
        baseline_name = "previous recorded run"
    else:
        print("history holds a single run and no --against baseline "
              "was given; nothing to compare", file=sys.stderr)
        return 2

    threshold = parse_threshold(args.fail_on_regression
                                if args.fail_on_regression is not None
                                else args.threshold)
    report = compare_records(current, baseline, threshold=threshold)
    print(f"baseline  : {baseline_name}")
    print(format_compare(report, verbose=args.verbose))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[verdict written to {args.json}]")
    if not report.ok:
        if args.fail_on_regression is not None:
            print(f"REGRESSED: {len(report.regressed)} cells beyond "
                  f"the {threshold:.0%} gate", file=sys.stderr)
            return 1
        print(f"warning: {len(report.regressed)} cells regressed "
              "(pass --fail-on-regression to make this fatal)")
    return 0


def cmd_perf_report(args: argparse.Namespace) -> int:
    """Render the history as a self-contained HTML dashboard."""
    from .perf import (
        HistoryStore,
        format_history_summary,
        load_jsonl,
        render_html,
    )

    records = []
    if args.baseline:
        records.extend(load_jsonl(args.baseline))
    records.extend(HistoryStore(args.history).records())
    profiles = None
    if args.profiles:
        from .profile import load_profiles

        profiles = load_profiles(args.profiles)
        print(f"[{len(profiles)} profile artifacts loaded from "
              f"{args.profiles}]")
    print(format_history_summary(records))
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(render_html(records, profiles=profiles))
    print(f"[dashboard written to {args.out} — self-contained, "
          "open in any browser]")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run a whole suite and write tables, figures, and JSON."""
    from .harness import (
        export_json,
        format_dynamic_count_table,
        format_percent_figure,
        format_performance_figure,
        format_timing_table,
    )
    from .workloads import JBYTEMARK, SPECJVM98

    suites = {"jbytemark": JBYTEMARK, "specjvm98": SPECJVM98}
    options = CompileOptions.from_cli_args(args)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for suite_name in (args.suite,) if args.suite else tuple(suites):
        suite = api.bench(suites[suite_name], options=options)
        results = suite.results
        sections = [
            format_dynamic_count_table(
                results, f"Dynamic 32-bit sign extensions ({suite_name})"
            ),
            format_percent_figure(
                results, f"Residual extensions, % of baseline ({suite_name})"
            ),
            format_performance_figure(
                results, f"Modelled run-time improvement ({suite_name})"
            ),
            format_timing_table(results),
        ]
        text_path = out_dir / f"{suite_name}.txt"
        text_path.write_text("\n\n".join(sections) + "\n")
        export_json(results, str(out_dir / f"{suite_name}.json"))
        print(f"wrote {text_path} and {suite_name}.json")
        if options.cache:
            print(f"[cache: {suite.cache_hits} hits, "
                  f"{suite.cache_misses} misses]")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the compile service front door (docs/SERVING.md)."""
    import asyncio

    from .serve import ReproServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        retry_after=args.retry_after,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        fuel=args.fuel,
        flight_capacity=args.flight_capacity,
        flight_dir=args.flight_dir,
        log_path=args.log,
        slo_window_s=args.slo_window,
        slo_target_p95_ms=args.slo_p95_ms,
        slo_target_error_rate=args.slo_error_rate,
        debug_hooks=args.debug_hooks,
    )

    async def _serve() -> None:
        server = ReproServer(config)
        await server.start()
        print(f"serving   : http://{config.host}:{server.port} "
              f"(workers={config.workers}, "
              f"queue_limit={config.queue_limit})")
        print("endpoints : POST /v1/compile /v1/run /v1/bench "
              "/v1/profile; GET /healthz /metricsz /debugz")
        print(f"fingerprint: {server.config_fingerprint}")
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\n[server stopped]")
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive a running server; verify and measure (docs/SERVING.md)."""
    from dataclasses import replace as _replace

    from .perf import HistoryStore, PerfRecorder, recorder_from_env
    from .serve import (
        Loadtest,
        LoadtestConfig,
        ServerConfig,
        ServerThread,
        record_report,
    )

    config = LoadtestConfig(
        url=args.url,
        requests=args.requests,
        concurrency=args.concurrency,
        mode=args.mode,
        rate=args.rate,
        ops=tuple(args.ops),
        variant=args.variant,
        machine=args.machine,
        engine=args.engine or "closure",
        fuel=args.fuel,
        seed=args.seed,
        verify=not args.no_verify,
        trace_path=args.trace,
    )
    spawned = None
    if args.spawn:
        spawned = ServerThread(ServerConfig(
            port=0, workers=args.workers, queue_limit=args.queue_limit,
        )).start()
        config = _replace(config, url=spawned.base_url)
        print(f"[spawned a server at {spawned.base_url}]")
    try:
        report = Loadtest(config).run()
    finally:
        if spawned is not None:
            spawned.stop()

    document = report.to_dict()
    latency = document["latency_ms"]
    print(f"mode      : {report.mode} ({config.concurrency} clients)"
          if report.mode == "closed"
          else f"mode      : open ({config.rate:g} req/s offered)")
    print(f"requests  : {report.offered} offered, "
          f"{report.completed} completed, {report.shed} shed, "
          f"{report.errors} errors")
    print(f"coalesced : {report.coalesced} (server-side)")
    print(f"latency   : p50 {latency['p50']:.1f} ms, "
          f"p95 {latency['p95']:.1f} ms, p99 {latency['p99']:.1f} ms "
          f"(max {latency['max']:.1f} ms)")
    print(f"throughput: {document['throughput_rps']:.1f} req/s over "
          f"{document['wall_seconds']:.2f}s")
    if config.verify:
        print(f"verified  : {report.verified} run responses bit-identical "
              "to local execution")
    if config.trace_path:
        print(f"traced    : {len(report.trace_ids)} requests, "
              f"{report.correlated} correlated with server spans — "
              f"Chrome trace at {config.trace_path}")
    for mismatch in report.mismatches:
        print(f"MISMATCH  : {mismatch}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[report written to {args.json}]")
    recorder = recorder_from_env("loadtest")
    if recorder is None and args.history:
        recorder = PerfRecorder(HistoryStore(args.history),
                                source="loadtest")
    if recorder is not None:
        record_report(report, recorder, config)
        print(f"[latency recorded to perf history "
              f"{recorder.store.path} — see `repro perf report`]")
    return 0 if report.ok else 1


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over a running server."""
    from .serve.top import TopConfig, run_top

    config = TopConfig(
        url=args.url,
        interval=args.interval,
        rows=args.rows,
        timeout=args.timeout,
    )
    return run_top(config, once=args.once, as_json=args.as_json)


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or trim the on-disk compile cache."""
    from .driver import CompileCache, default_cache_dir

    cache_dir = pathlib.Path(args.cache_dir) if args.cache_dir \
        else default_cache_dir()
    cache = CompileCache(cache_dir, max_bytes=args.cache_max_bytes)

    if args.cache_command == "stats":
        entries, used = cache.disk_usage()
        budget = cache.max_bytes
        print(f"cache dir : {cache_dir}")
        print(f"entries   : {entries}")
        print(f"bytes     : {used}")
        print(f"budget    : {budget if budget is not None else 'unbounded'}")
        return 0
    if args.cache_command == "prune":
        if cache.max_bytes is None:
            print("error: no byte budget; pass --cache-max-bytes or set "
                  "$REPRO_CACHE_MAX_BYTES", file=sys.stderr)
            return 2
        evicted = cache.prune()
        entries, used = cache.disk_usage()
        print(f"evicted   : {evicted} entries")
        print(f"remaining : {entries} entries, {used} bytes "
              f"(budget {cache.max_bytes})")
        return 0
    # clear
    entries, used = cache.disk_usage()
    cache.clear()
    print(f"cleared   : {entries} entries, {used} bytes from {cache_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Effective Sign Extension Elimination (PLDI 2002) — "
                    "compile, optimize, and measure J32 programs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="compile and execute")
    run_parser.add_argument("file")
    _common_args(run_parser, telemetry=True)
    _engine_arg(run_parser)
    run_parser.add_argument("--layout-profile", default=None, metavar="PATH",
                            help="*.profile.json artifact (or directory of "
                                 "them) driving profile-guided block layout "
                                 "in the translated engines")
    run_parser.set_defaults(fn=cmd_run)

    ir_parser = subparsers.add_parser(
        "ir", help="dump optimized IR (or generated Python)"
    )
    ir_parser.add_argument("file", help="a .j32 file or a workload name")
    _common_args(ir_parser, telemetry=True)
    ir_parser.add_argument("--emit-python", action="store_true",
                           help="dump the codegen tier's generated Python "
                                "source (block-order + fusion annotations) "
                                "instead of the IR")
    ir_parser.add_argument("--layout-profile", default=None, metavar="PATH",
                           help="*.profile.json artifact (or directory) "
                                "whose edge counts order the emitted blocks")
    ir_parser.set_defaults(fn=cmd_ir)

    compile_parser = subparsers.add_parser(
        "compile", help="batch-compile files through the parallel, "
                        "cache-aware driver"
    )
    compile_parser.add_argument("files", nargs="+", metavar="FILE")
    _common_args(compile_parser, driver=True)
    compile_parser.set_defaults(fn=cmd_compile)

    trace_parser = subparsers.add_parser(
        "trace", help="compile + run under full telemetry; write a "
                      "Chrome about://tracing JSON"
    )
    trace_parser.add_argument("file")
    trace_parser.add_argument("--out", default="trace.json",
                              help="Chrome trace_event output path")
    trace_parser.add_argument("--full", default=None, metavar="OUT.JSON",
                              help="also write the full telemetry "
                                   "document (metrics + decision log)")
    _common_args(trace_parser)
    trace_parser.set_defaults(fn=cmd_trace)

    asm_parser = subparsers.add_parser(
        "asm", help="dump assembly-flavoured lowering"
    )
    asm_parser.add_argument("file")
    _common_args(asm_parser)
    asm_parser.set_defaults(fn=cmd_asm)

    variants_parser = subparsers.add_parser(
        "variants", help="run all 12 algorithm variants"
    )
    variants_parser.add_argument("file")
    _common_args(variants_parser)
    variants_parser.set_defaults(fn=cmd_variants)

    bench_parser = subparsers.add_parser(
        "bench", help="sweep one named benchmark workload"
    )
    bench_parser.add_argument("workload")
    bench_parser.add_argument("--json", default=None,
                              help="also write results as JSON")
    bench_parser.add_argument("--telemetry", default=None,
                              metavar="OUT.JSON",
                              help="collect + write per-variant telemetry")
    bench_parser.add_argument("--profile-dir", default=None, metavar="DIR",
                              help="write one execution-profile artifact "
                                   "per (variant) cell under DIR")
    _engine_arg(bench_parser)
    _driver_args(bench_parser)
    bench_parser.set_defaults(fn=cmd_bench)

    profile_parser = subparsers.add_parser(
        "profile", help="profile one workload: hot blocks, annotated IR, "
                        "flamegraph stacks, HTML heatmap (docs/PROFILING.md)"
    )
    profile_parser.add_argument("target",
                                help="workload name or a .j32 file")
    profile_parser.add_argument("--dir", dest="profile_dir", default=None,
                                metavar="DIR",
                                help="write the profile artifact under DIR")
    profile_parser.add_argument("--ir", action="store_true",
                                help="print the hotness-annotated IR dump")
    profile_parser.add_argument("--flame", default=None, metavar="OUT.TXT",
                                help="write collapsed flamegraph stacks")
    profile_parser.add_argument("--heatmap", default=None,
                                metavar="OUT.HTML",
                                help="write the standalone heatmap panel")
    _common_args(profile_parser)
    _engine_arg(profile_parser)
    profile_parser.set_defaults(fn=cmd_profile)

    fuzz_parser = subparsers.add_parser(
        "fuzz", help="differential fuzzing campaign across all variants "
                     "and machine lowerings"
    )
    fuzz_parser.add_argument("--seeds", type=int, default=1000,
                             help="number of consecutive generator seeds")
    fuzz_parser.add_argument("--seed-start", type=int, default=0,
                             metavar="N", help="first seed (shards the "
                             "seed space across campaigns)")
    fuzz_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="compile over N worker processes")
    fuzz_parser.add_argument("--time-budget", type=float, default=None,
                             metavar="SEC",
                             help="stop fuzzing new seeds after SEC "
                                  "seconds of wall clock")
    fuzz_parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                             help="divergence corpus location (default "
                                  "~/.cache/repro/fuzz-corpus)")
    fuzz_parser.add_argument("--variant", action="append", default=None,
                             choices=sorted(VARIANTS), metavar="NAME",
                             help="restrict to this variant (repeatable; "
                                  "default: all 12)")
    fuzz_parser.add_argument("--machines", nargs="+",
                             default=["ia64", "ppc64"],
                             choices=sorted(MACHINES),
                             help="machine lowerings to cross-check")
    fuzz_parser.add_argument("--fuel", type=int, default=2_000_000,
                             help="interpreter step budget per execution")
    fuzz_parser.add_argument("--reduce",
                             action=argparse.BooleanOptionalAction,
                             default=True,
                             help="shrink new witnesses with the "
                                  "delta-debugging reducer")
    fuzz_parser.add_argument("--replay", action="store_true",
                             help="only replay corpus witnesses as "
                                  "regressions; fuzz no new seeds")
    fuzz_parser.add_argument("--max-divergences", type=int, default=None,
                             metavar="N",
                             help="stop after N new divergences")
    fuzz_parser.add_argument("--inject-bug", action="store_true",
                             help="DEBUG: compile with a deliberately "
                                  "broken AnalyzeDEF to self-test the "
                                  "campaign oracle")
    fuzz_parser.add_argument("--profile-dir", default=None, metavar="DIR",
                             help="write a hotness profile of each new "
                                  "witness's gold run under DIR (triage)")
    fuzz_parser.add_argument("--json", default=None, metavar="OUT.JSON",
                             help="write the campaign report here")
    fuzz_parser.add_argument("--telemetry", default=None,
                             metavar="OUT.JSON",
                             help="write the full telemetry document "
                                  "(spans + fuzz.campaign.* counters)")
    _engine_arg(fuzz_parser)
    fuzz_parser.set_defaults(fn=cmd_fuzz)

    perf_parser = subparsers.add_parser(
        "perf", help="benchmark history: record runs, gate regressions, "
                     "render the HTML dashboard (docs/PERF.md)"
    )
    perf_sub = perf_parser.add_subparsers(dest="perf_command",
                                          required=True)

    perf_record = perf_sub.add_parser(
        "record", help="run the fixed perf grid; append one record per "
                       "cell repeat to the history"
    )
    perf_record.add_argument("--workloads", nargs="+",
                             default=["fourier", "huffman"],
                             metavar="NAME",
                             help="workloads in the grid (default: "
                                  "fourier huffman)")
    perf_record.add_argument("--engines", nargs="+", default=["closure"],
                             choices=["closure", "reference", "codegen",
                                      "both"],
                             help="execution engines to measure")
    perf_record.add_argument("--variants", nargs="+", default=None,
                             choices=sorted(VARIANTS), metavar="NAME",
                             help="variants in the grid (default: "
                                  "baseline + the full new algorithm)")
    perf_record.add_argument("--all-variants", action="store_true",
                             help="measure all 12 table variants")
    perf_record.add_argument("--repeat", type=int, default=3,
                             help="repeats per cell (min-of-repeats "
                                  "is applied at compare time)")
    perf_record.add_argument("--history", default=None, metavar="DIR",
                             help="history location (default "
                                  "~/.cache/repro/perf-history)")
    perf_record.add_argument("--machine", default="ia64",
                             choices=sorted(MACHINES))
    perf_record.add_argument("--fuel", type=int, default=100_000_000)
    _driver_args(perf_record)
    perf_record.set_defaults(fn=cmd_perf_record)

    perf_compare = perf_sub.add_parser(
        "compare", help="compare the latest recorded run against a "
                        "baseline; classify every cell"
    )
    perf_compare.add_argument("--history", default=None, metavar="DIR")
    perf_compare.add_argument("--against", default=None, metavar="JSONL",
                              help="baseline records (e.g. the "
                                   "repo-committed perf/baseline.jsonl); "
                                   "default: the previous recorded run")
    perf_compare.add_argument("--threshold", default="10%",
                              metavar="PCT",
                              help="relative wall-time noise floor "
                                   "(default 10%%)")
    perf_compare.add_argument("--fail-on-regression", default=None,
                              nargs="?", const="10%", metavar="PCT",
                              help="exit 1 on any regression beyond PCT "
                                   "(default 10%% when given bare)")
    perf_compare.add_argument("--json", default=None, metavar="OUT.JSON",
                              help="write the machine-readable verdict")
    perf_compare.add_argument("--verbose", action="store_true",
                              help="print every metric, not just "
                                   "regressions")
    perf_compare.set_defaults(fn=cmd_perf_compare)

    perf_report = perf_sub.add_parser(
        "report", help="render the history as a self-contained HTML "
                       "dashboard + terminal summary"
    )
    perf_report.add_argument("--history", default=None, metavar="DIR")
    perf_report.add_argument("--baseline", default=None, metavar="JSONL",
                             help="also merge a baseline file into the "
                                  "plots")
    perf_report.add_argument("--out", default="perf-report.html",
                             help="dashboard output path")
    perf_report.add_argument("--profiles", default=None, metavar="DIR",
                             help="embed per-workload hot-block heatmaps "
                                  "from the profile artifacts under DIR")
    perf_report.set_defaults(fn=cmd_perf_report)

    serve_parser = subparsers.add_parser(
        "serve", help="compile-as-a-service: async HTTP front door with "
                      "coalescing and backpressure (docs/SERVING.md)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8787,
                              help="listen port (0 = ephemeral)")
    serve_parser.add_argument("--workers", type=int, default=2, metavar="N",
                              help="worker threads executing jobs")
    serve_parser.add_argument("--queue-limit", type=int, default=8,
                              metavar="N",
                              help="max admitted jobs before requests "
                                   "are shed with 429")
    serve_parser.add_argument("--retry-after", type=float, default=0.5,
                              metavar="SEC",
                              help="Retry-After hint on shed requests")
    serve_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="on-disk compile cache location "
                                   "(default: memory-only)")
    serve_parser.add_argument("--cache-max-bytes", type=int, default=None,
                              metavar="N",
                              help="disk cache byte budget (also "
                                   "$REPRO_CACHE_MAX_BYTES)")
    serve_parser.add_argument("--fuel", type=int, default=100_000_000,
                              help="default interpreter step budget")
    serve_parser.add_argument("--flight-capacity", type=int, default=256,
                              metavar="N",
                              help="flight-recorder ring size (recent "
                                   "requests kept for /debugz)")
    serve_parser.add_argument("--flight-dir", default=None, metavar="DIR",
                              help="write a JSONL flight dump here on "
                                   "every 5xx (default: no artifacts)")
    serve_parser.add_argument("--log", default=None, metavar="FILE",
                              help="structured JSONL access/event log "
                                   "with size-based rotation")
    serve_parser.add_argument("--slo-window", type=float, default=300.0,
                              metavar="SEC",
                              help="rolling SLO window length")
    serve_parser.add_argument("--slo-p95-ms", type=float, default=500.0,
                              metavar="MS",
                              help="windowed p95 latency target")
    serve_parser.add_argument("--slo-error-rate", type=float, default=0.01,
                              metavar="RATE",
                              help="windowed error-rate budget "
                                   "(0.01 = 99%% success)")
    serve_parser.add_argument("--debug-hooks", action="store_true",
                              help="honour client fault-injection fields "
                                   "(tests/CI only)")
    serve_parser.set_defaults(fn=cmd_serve)

    loadtest_parser = subparsers.add_parser(
        "loadtest", help="drive a repro serve with a seeded workload mix; "
                         "verify bit-identity and record latency "
                         "percentiles (docs/SERVING.md)"
    )
    loadtest_parser.add_argument("--url", default="http://127.0.0.1:8787",
                                 help="server base URL")
    loadtest_parser.add_argument("--spawn", action="store_true",
                                 help="spawn an in-process server on an "
                                      "ephemeral port instead of --url")
    loadtest_parser.add_argument("--requests", type=int, default=50,
                                 metavar="N")
    loadtest_parser.add_argument("--concurrency", type=int, default=8,
                                 metavar="N",
                                 help="closed-loop client count")
    loadtest_parser.add_argument("--mode", default="closed",
                                 choices=["closed", "open"],
                                 help="closed-loop (clients wait for "
                                      "answers) or open-loop (fixed "
                                      "request schedule)")
    loadtest_parser.add_argument("--rate", type=float, default=50.0,
                                 metavar="RPS",
                                 help="open-loop offered request rate")
    loadtest_parser.add_argument("--ops", nargs="+",
                                 default=["run", "run", "compile"],
                                 choices=["run", "compile"],
                                 help="endpoint mix (repeat to weight)")
    loadtest_parser.add_argument("--seed", type=int, default=0,
                                 help="workload-mix RNG seed")
    loadtest_parser.add_argument("--no-verify", action="store_true",
                                 help="skip the bit-identity check "
                                      "against local execution")
    loadtest_parser.add_argument("--workers", type=int, default=2,
                                 metavar="N",
                                 help="worker threads of a --spawn server")
    loadtest_parser.add_argument("--queue-limit", type=int, default=8,
                                 metavar="N",
                                 help="queue limit of a --spawn server")
    loadtest_parser.add_argument("--json", default=None, metavar="OUT.JSON",
                                 help="write the full report here")
    loadtest_parser.add_argument("--trace", default=None,
                                 metavar="OUT.JSON",
                                 help="export a merged client+server "
                                      "Chrome trace correlated on "
                                      "X-Repro-Trace-Id")
    loadtest_parser.add_argument("--history", default=None, metavar="DIR",
                                 help="record latency percentiles to this "
                                      "perf history (also $REPRO_PERF_DIR)")
    _common_args(loadtest_parser)
    _engine_arg(loadtest_parser)
    loadtest_parser.set_defaults(fn=cmd_loadtest)

    top_parser = subparsers.add_parser(
        "top", help="live dashboard over a running repro serve: "
                    "throughput, latency, SLO burn, hottest requests "
                    "(docs/OBSERVABILITY.md)"
    )
    top_parser.add_argument("--url", default="http://127.0.0.1:8787",
                            help="server base URL")
    top_parser.add_argument("--interval", type=float, default=2.0,
                            metavar="SEC", help="refresh interval")
    top_parser.add_argument("--rows", type=int, default=8, metavar="N",
                            help="hottest-request rows shown")
    top_parser.add_argument("--timeout", type=float, default=10.0,
                            metavar="SEC", help="per-poll request timeout")
    top_parser.add_argument("--once", action="store_true",
                            help="sample once and exit")
    top_parser.add_argument("--json", dest="as_json", action="store_true",
                            help="with --once: print the sample as JSON "
                                 "(scripting mode)")
    top_parser.set_defaults(fn=cmd_top)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, trim, or clear the on-disk compile cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    for name, help_text in (
        ("stats", "show entry count, bytes used, and the byte budget"),
        ("prune", "evict oldest entries until under the byte budget"),
        ("clear", "delete every cached entry"),
    ):
        sub = cache_sub.add_parser(name, help=help_text)
        sub.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache location (default ~/.cache/repro)")
        sub.add_argument("--cache-max-bytes", type=int, default=None,
                         metavar="N",
                         help="byte budget (also $REPRO_CACHE_MAX_BYTES)")
        sub.set_defaults(fn=cmd_cache)

    report_parser = subparsers.add_parser(
        "report", help="run a whole suite; write tables, figures, JSON"
    )
    report_parser.add_argument("--suite", default=None,
                               choices=["jbytemark", "specjvm98"],
                               help="one suite (default: both)")
    report_parser.add_argument("--out", default="report",
                               help="output directory")
    _driver_args(report_parser)
    report_parser.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. piping into `head`
        return 0
    except SourceError as exc:
        # A diagnosable input problem is a one-line message, never a
        # traceback: the line/column diagnostic is the whole story.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename or exc}",
              file=sys.stderr)
        return 2
    except IsADirectoryError as exc:
        print(f"error: is a directory: {exc.filename or exc}",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
