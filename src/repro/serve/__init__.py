"""Compile-as-a-service: the async front door and its load-test client.

``repro serve`` mounts the repo's compile cache and batch driver behind
a stdlib-only asyncio HTTP/1.1 JSON server with bounded admission,
``429 Retry-After`` load shedding, and request coalescing keyed on the
compile cache's content fingerprints; ``repro loadtest`` drives it with
seeded open- or closed-loop workload mixes and verifies every served
run bit-identical to a local ``repro.api.run``.  docs/SERVING.md is the
protocol reference.
"""

from .loadtest import (
    BUILTIN_SOURCES,
    Loadtest,
    LoadtestConfig,
    LoadtestReport,
    record_report,
)
from .protocol import (
    ProtocolError,
    ServeRequest,
    VOLATILE_KEYS,
    bench_response,
    compile_response,
    parse_request,
    profile_response,
    run_response,
    strip_volatile,
)
from .server import ReproServer, ServerConfig, ServerThread

__all__ = [
    "BUILTIN_SOURCES",
    "Loadtest",
    "LoadtestConfig",
    "LoadtestReport",
    "ProtocolError",
    "ReproServer",
    "ServeRequest",
    "ServerConfig",
    "ServerThread",
    "VOLATILE_KEYS",
    "bench_response",
    "compile_response",
    "parse_request",
    "profile_response",
    "record_report",
    "run_response",
    "strip_volatile",
]
