"""Compile-as-a-service: the async front door and its load-test client.

``repro serve`` mounts the repo's compile cache and batch driver behind
a stdlib-only asyncio HTTP/1.1 JSON server with bounded admission,
``429 Retry-After`` load shedding, and request coalescing keyed on the
compile cache's content fingerprints; ``repro loadtest`` drives it with
seeded open- or closed-loop workload mixes and verifies every served
run bit-identical to a local ``repro.api.run``.  docs/SERVING.md is the
protocol reference.

The runtime observability layer rides on top (docs/OBSERVABILITY.md):
request-scoped tracing correlated on ``X-Repro-Trace-Id``, the
:class:`FlightRecorder` ring behind ``/debugz``, rolling-window SLO
tracking on ``/healthz``, Prometheus text exposition on ``/metricsz``,
and the ``repro top`` live dashboard.
"""

from .flight import FlightRecorder, RequestRecord
from .loadtest import (
    BUILTIN_SOURCES,
    Loadtest,
    LoadtestConfig,
    LoadtestReport,
    record_report,
)
from .protocol import (
    ProtocolError,
    ServeRequest,
    VOLATILE_KEYS,
    bench_response,
    compile_response,
    parse_request,
    profile_response,
    run_response,
    strip_volatile,
)
from .server import ReproServer, ServerConfig, ServerThread
from .slo import SloConfig, SloTracker
from .top import TopClient, TopConfig, TopSample

__all__ = [
    "BUILTIN_SOURCES",
    "FlightRecorder",
    "Loadtest",
    "LoadtestConfig",
    "LoadtestReport",
    "ProtocolError",
    "ReproServer",
    "RequestRecord",
    "ServeRequest",
    "ServerConfig",
    "ServerThread",
    "SloConfig",
    "SloTracker",
    "TopClient",
    "TopConfig",
    "TopSample",
    "VOLATILE_KEYS",
    "bench_response",
    "compile_response",
    "parse_request",
    "profile_response",
    "record_report",
    "run_response",
    "strip_volatile",
]
