"""The ``repro loadtest`` client: drive a server, verify, measure.

The client answers three questions about a running ``repro serve``
(docs/SERVING.md describes the methodology):

* **is it correct under concurrency?** — every sampled ``run`` response
  is compared against a locally computed ``repro.api.run`` of the same
  request body; after stripping the volatile fields the two documents
  must be *equal* (``repro.serve.protocol`` renders both sides, so the
  comparison is byte-for-byte on the JSON level);
* **how does it behave at the offered load?** — a seeded workload mix
  is driven either *closed-loop* (``concurrency`` clients, each sending
  its next request when the previous answer arrives) or *open-loop*
  (requests issued on a fixed schedule of ``rate`` per second,
  regardless of completions — the mode that actually exposes queueing
  collapse, which closed-loop clients mask by slowing down with the
  server);
* **what did it cost?** — per-request latencies are kept exactly (no
  bucketing) and reduced to p50/p95/p99/mean/max, then recorded as
  :class:`~repro.perf.record.RunRecord` rows (``engine="serve"``) so
  ``repro perf report`` renders the serving-latency section next to
  the compiler's own history.

Every request also carries a client-minted trace id in the
``X-Repro-Trace-Id`` header.  The server honours it (docs/
OBSERVABILITY.md), so with ``trace_path`` set the client afterwards
pulls the matching server-side span forests from ``/debugz`` and merges
them — client span, serve stages, and worker spans — into one Chrome
trace correlated end to end on the same ids.

The run is deterministic for a given ``seed`` in everything the client
controls: the op sequence and payloads derive from ``random.Random(seed)``;
only timings and server-side dispositions (cache, coalescing) vary.
"""

from __future__ import annotations

import asyncio
import json
import time
import uuid
from dataclasses import dataclass, field
from typing import Any

from ..telemetry import Tracer
from .protocol import run_response, strip_volatile

#: tiny J32 kernels the default mix compiles and runs; distinct shapes
#: so the server sees a spread of fingerprints, small so a loadtest
#: finishes in seconds
BUILTIN_SOURCES = {
    "sum8": """
void main() {
    int[] a = new int[8];
    int t = 0;
    for (int i = 0; i < 8; i++) { a[i] = i * 3; t += a[i]; }
    sink(t);
}
""",
    "shift16": """
void main() {
    short s = (short)12345;
    int t = 0;
    for (int i = 0; i < 16; i++) { s = (short)(s + i); t += s; }
    sink(t);
}
""",
    "bytemix": """
void main() {
    byte b = (byte)7;
    int t = 0;
    for (int i = 0; i < 24; i++) { b = (byte)(b * 3 + i); t += b; }
    sink(t);
}
""",
}


@dataclass(frozen=True)
class LoadtestConfig:
    """One load-test campaign."""

    url: str = "http://127.0.0.1:8787"
    requests: int = 50
    #: closed-loop client count
    concurrency: int = 8
    #: "closed" (concurrency-limited) or "open" (rate-scheduled)
    mode: str = "closed"
    #: open-loop request rate per second
    rate: float = 50.0
    #: endpoint mix; names repeated to weight them
    ops: tuple[str, ...] = ("run", "run", "compile")
    #: payload sources, by name from :data:`BUILTIN_SOURCES`
    kernels: tuple[str, ...] = ("sum8", "shift16", "bytemix")
    variant: str = "new algorithm (all)"
    machine: str = "ia64"
    engine: str = "closure"
    fuel: int = 100_000_000
    seed: int = 0
    #: compare served run responses against local api.run results
    verify: bool = True
    #: per-request timeout, seconds
    timeout: float = 60.0
    #: write a merged client+server Chrome trace here (None = don't)
    trace_path: str | None = None
    #: how many request trace ids to correlate against ``/debugz``
    trace_samples: int = 5


@dataclass
class LoadtestReport:
    """What one campaign measured."""

    mode: str
    offered: int
    completed: int = 0
    errors: int = 0
    shed: int = 0
    #: server-side coalesced count over the campaign (from /metricsz)
    coalesced: int = 0
    verified: int = 0
    mismatches: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: all request latencies, milliseconds, completion order
    latencies_ms: list[float] = field(default_factory=list)
    by_status: dict[int, int] = field(default_factory=dict)
    #: trace id of every completed (2xx) request, completion order
    trace_ids: list[str] = field(default_factory=list)
    #: trace ids whose server-side span forest was fetched and merged
    correlated: int = 0
    trace_path: str | None = None

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile of the observed latencies."""
        if not self.latencies_ms:
            return 0.0
        ranked = sorted(self.latencies_ms)
        rank = max(1, -(-int(q * len(ranked) * 100) // 100))  # ceil
        return ranked[min(rank, len(ranked)) - 1]

    @property
    def ok(self) -> bool:
        return self.errors == 0 and not self.mismatches

    def to_dict(self) -> dict[str, Any]:
        latencies = self.latencies_ms
        return {
            "mode": self.mode,
            "offered": self.offered,
            "completed": self.completed,
            "errors": self.errors,
            "shed": self.shed,
            "coalesced": self.coalesced,
            "verified": self.verified,
            "mismatches": list(self.mismatches),
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_rps": (
                round(self.completed / self.wall_seconds, 2)
                if self.wall_seconds > 0 else 0.0
            ),
            "latency_ms": {
                "p50": round(self.percentile(0.50), 3),
                "p95": round(self.percentile(0.95), 3),
                "p99": round(self.percentile(0.99), 3),
                "mean": (round(sum(latencies) / len(latencies), 3)
                         if latencies else 0.0),
                "max": round(max(latencies), 3) if latencies else 0.0,
            },
            "by_status": {str(s): c
                          for s, c in sorted(self.by_status.items())},
            "traced": len(self.trace_ids),
            "correlated": self.correlated,
            "trace_path": self.trace_path,
        }


def _parse_url(url: str) -> tuple[str, int]:
    rest = url.split("://", 1)[-1].rstrip("/")
    host, _, port = rest.partition(":")
    return host or "127.0.0.1", int(port) if port else 80


async def _http_request(host: str, port: int, method: str, path: str,
                        body: bytes = b"",
                        timeout: float = 60.0,
                        headers: dict[str, str] | None = None,
                        ) -> tuple[int, dict]:
    """One connection, one request; returns (status, parsed JSON)."""

    async def _talk() -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            extra = "".join(f"{name}: {value}\r\n"
                            for name, value in (headers or {}).items())
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            payload = await reader.readexactly(length) if length else b"{}"
            return status, json.loads(payload.decode("utf-8"))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(_talk(), timeout=timeout)


class Loadtest:
    """Drives one campaign against a live server."""

    def __init__(self, config: LoadtestConfig | None = None) -> None:
        self.config = config if config is not None else LoadtestConfig()
        self.host, self.port = _parse_url(self.config.url)
        #: request-body JSON string -> locally computed expected response
        self._expected: dict[str, dict] = {}
        #: campaign-wide tracer all per-request spans merge into
        self.tracer = Tracer(process_name="loadtest")

    # -- request planning ----------------------------------------------------

    def plan(self) -> list[tuple[str, dict]]:
        """The seeded (endpoint, payload) sequence for this campaign."""
        import random

        cfg = self.config
        rng = random.Random(cfg.seed)
        requests = []
        for _ in range(cfg.requests):
            op = rng.choice(cfg.ops)
            kernel = rng.choice(cfg.kernels)
            payload = {
                "source": BUILTIN_SOURCES[kernel],
                "variant": cfg.variant,
                "machine": cfg.machine,
                "engine": cfg.engine,
                "fuel": cfg.fuel,
            }
            requests.append((op, payload))
        return requests

    def _expect(self, payload: dict) -> dict:
        """The locally computed run response for ``payload`` (cached)."""
        from .. import api
        from ..core.config import CompileOptions

        key = json.dumps(payload, sort_keys=True)
        if key not in self._expected:
            options = CompileOptions(
                variant=payload["variant"],
                machine=payload["machine"],
                engine=payload["engine"],
                fuel=payload["fuel"],
            )
            outcome = api.run(payload["source"], options)
            self._expected[key] = strip_volatile(run_response(outcome))
        return self._expected[key]

    # -- campaign ------------------------------------------------------------

    async def _fire(self, endpoint: str, payload: dict,
                    report: LoadtestReport) -> None:
        cfg = self.config
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        # The client mints the trace id and the server honours it, so
        # both sides of the wire agree on the token before the first
        # byte is sent; concurrent requests each get their own tracer
        # (the span stack is per-request) merged into the campaign's.
        trace_id = f"lt-{uuid.uuid4().hex[:16]}"
        request_tracer = Tracer(process_name=f"client:{trace_id}")
        started = time.monotonic()
        try:
            with request_tracer.span(f"request:{endpoint}",
                                     category="client",
                                     trace_id=trace_id) as span:
                status, answer = await _http_request(
                    self.host, self.port, "POST", f"/v1/{endpoint}", body,
                    timeout=cfg.timeout,
                    headers={"X-Repro-Trace-Id": trace_id})
                span.annotate(status=status)
        except Exception as exc:
            report.errors += 1
            report.mismatches.append(f"{endpoint}: transport error: {exc}")
            return
        finally:
            self.tracer.merge(request_tracer)
        elapsed_ms = (time.monotonic() - started) * 1000
        report.latencies_ms.append(elapsed_ms)
        report.by_status[status] = report.by_status.get(status, 0) + 1
        if status == 429:
            report.shed += 1
            return
        if status != 200:
            report.errors += 1
            report.mismatches.append(
                f"{endpoint}: HTTP {status}: {answer.get('error')}")
            return
        report.completed += 1
        report.trace_ids.append(trace_id)
        if cfg.verify and endpoint == "run":
            served = strip_volatile(answer)
            expected = await asyncio.get_running_loop().run_in_executor(
                None, self._expect, payload)
            if served == expected:
                report.verified += 1
            else:
                diff = {k for k in expected
                        if served.get(k) != expected[k]}
                report.mismatches.append(
                    f"run: served response diverges from local run "
                    f"(fields: {', '.join(sorted(diff)) or 'missing'})")

    async def _run_closed(self, requests: list[tuple[str, dict]],
                          report: LoadtestReport) -> None:
        queue: asyncio.Queue = asyncio.Queue()
        for item in requests:
            queue.put_nowait(item)

        async def worker() -> None:
            while True:
                try:
                    endpoint, payload = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                await self._fire(endpoint, payload, report)

        await asyncio.gather(
            *(worker() for _ in range(self.config.concurrency)))

    async def _run_open(self, requests: list[tuple[str, dict]],
                        report: LoadtestReport) -> None:
        interval = 1.0 / max(self.config.rate, 0.001)
        tasks = []
        for endpoint, payload in requests:
            tasks.append(asyncio.ensure_future(
                self._fire(endpoint, payload, report)))
            await asyncio.sleep(interval)
        await asyncio.gather(*tasks)

    async def _metric_total(self, family: str) -> int:
        try:
            status, document = await _http_request(
                self.host, self.port, "GET", "/metricsz",
                timeout=self.config.timeout)
        except Exception:
            return 0
        if status != 200:
            return 0
        counters = document.get("counters", {})
        return sum(value for name, value in counters.items()
                   if name == family or name.startswith(family + "{"))

    async def _correlate(self, report: LoadtestReport) -> None:
        """Merge server-side span forests for sampled trace ids.

        For up to ``trace_samples`` completed requests, fetch the
        flight-recorder record from ``/debugz?trace=<id>``, rebuild its
        span forest with :meth:`Tracer.from_dict`, and merge it into
        the campaign tracer.  The merged forest already contains the
        worker-thread spans the server folded in, so the exported trace
        shows client, serve-stage, and worker timelines per request.
        """
        for trace_id in report.trace_ids[:self.config.trace_samples]:
            try:
                status, document = await _http_request(
                    self.host, self.port, "GET",
                    f"/debugz?trace={trace_id}&limit=1",
                    timeout=self.config.timeout)
            except Exception:
                continue
            if status != 200:
                continue
            records = document.get("records") or []
            spans = records[0].get("spans") if records else None
            if not spans:
                continue
            self.tracer.merge(
                Tracer.from_dict(spans, process_name=f"server:{trace_id}"))
            report.correlated += 1

    def write_trace(self, path: str) -> None:
        """Export the merged campaign trace as Chrome trace JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.tracer.dumps())
            handle.write("\n")

    async def run_async(self) -> LoadtestReport:
        cfg = self.config
        report = LoadtestReport(mode=cfg.mode, offered=cfg.requests)
        before_coalesced = await self._metric_total("serve.coalesced")
        requests = self.plan()
        started = time.monotonic()
        if cfg.mode == "open":
            await self._run_open(requests, report)
        else:
            await self._run_closed(requests, report)
        report.wall_seconds = time.monotonic() - started
        report.coalesced = (await self._metric_total("serve.coalesced")
                            - before_coalesced)
        if cfg.trace_path:
            await self._correlate(report)
            self.write_trace(cfg.trace_path)
            report.trace_path = cfg.trace_path
        return report

    def run(self) -> LoadtestReport:
        return asyncio.run(self.run_async())


def record_report(report: LoadtestReport, recorder,
                  config: LoadtestConfig) -> None:
    """Persist one campaign as perf history rows (``engine="serve"``).

    One record per campaign: the cell key is (mode, machine, variant,
    serve) so open- and closed-loop histories track separately, and the
    measures carry the latency distribution the dashboard's serving
    section renders.
    """
    recorder.record_cell(
        workload=f"loadtest-{report.mode}",
        variant=config.variant,
        engine="serve",
        machine=config.machine,
        fuel=config.fuel,
        measures={
            "p50_ms": report.percentile(0.50),
            "p95_ms": report.percentile(0.95),
            "p99_ms": report.percentile(0.99),
            "mean_ms": (sum(report.latencies_ms)
                        / len(report.latencies_ms)
                        if report.latencies_ms else 0.0),
            "max_ms": (max(report.latencies_ms)
                       if report.latencies_ms else 0.0),
            "throughput_rps": (report.completed / report.wall_seconds
                               if report.wall_seconds > 0 else 0.0),
            "offered": float(report.offered),
            "completed": float(report.completed),
            "shed": float(report.shed),
            "coalesced": float(report.coalesced),
            "errors": float(report.errors),
        },
        counters={
            f"loadtest.status.{status}": count
            for status, count in sorted(report.by_status.items())
        },
    )
