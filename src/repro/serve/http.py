"""A minimal, dependency-free asyncio HTTP/1.1 layer.

Just enough HTTP for the compile service: request-line + header
parsing, ``Content-Length`` bodies, keep-alive, and byte-exact response
rendering.  No chunked transfer, no TLS, no multipart — the protocol
(docs/SERVING.md) is JSON-over-POST and fixed GET endpoints, so none of
that is needed, and every line of parsing code here is code the server
actually exercises.

Limits are enforced while *reading*, so an oversized or malformed
request can be rejected with the right status before the server buffers
unbounded data:

* request line and each header line are bounded by the stream reader's
  64 KiB line limit;
* at most :data:`MAX_HEADER_COUNT` headers;
* bodies larger than the server's ``max_body_bytes`` raise
  :class:`HttpError` 413 without reading the body.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

MAX_HEADER_COUNT = 64

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that must be answered with an HTTP error status."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(f"{status}: {message}")


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body as JSON; :class:`HttpError` 400 when it is not."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc


async def read_request(reader, *, max_body_bytes: int) -> Request | None:
    """Parse one request off ``reader``; ``None`` on clean EOF."""
    try:
        line = await reader.readline()
    except (ValueError, ConnectionError):
        raise HttpError(400, "request line too long")
    if not line:
        return None  # client closed between requests
    try:
        text = line.decode("latin-1").rstrip("\r\n")
        method, target, version = text.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    while True:
        if len(headers) > MAX_HEADER_COUNT:
            raise HttpError(400, "too many headers")
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            raise HttpError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, value = line.decode("latin-1").split(":", 1)
        except ValueError:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body_bytes:
        raise HttpError(413, f"body of {length} bytes exceeds the "
                             f"{max_body_bytes}-byte limit")
    if length:
        try:
            body = await reader.readexactly(length)
        except Exception:
            raise HttpError(400, "body shorter than Content-Length")
    return Request(method=method.upper(), target=target, headers=headers,
                   body=body)


@dataclass
class Response:
    """One response, rendered with :meth:`to_bytes`."""

    status: int = 200
    payload: Any = None  # JSON-serialized when body is not given
    body: bytes | None = None
    content_type: str = "application/json"
    headers: list[tuple[str, str]] = field(default_factory=list)
    keep_alive: bool = True
    #: error classification for the ``serve.errors{kind}`` counter;
    #: not rendered on the wire
    error_kind: str | None = None

    def to_bytes(self) -> bytes:
        if self.body is not None:
            body = self.body
        else:
            body = (json.dumps(self.payload, sort_keys=True)
                    + "\n").encode("utf-8")
        phrase = STATUS_PHRASES.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {phrase}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if self.keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + body


def error_response(status: int, message: str, *,
                   keep_alive: bool = True,
                   headers: list[tuple[str, str]] | None = None,
                   kind: str | None = None) -> Response:
    """An error answer; ``kind`` labels it in ``serve.errors{kind}``
    (defaulting to the status class when unset)."""
    return Response(
        status=status,
        payload={"error": message, "status": status},
        headers=headers or [],
        keep_alive=keep_alive,
        error_kind=kind,
    )
