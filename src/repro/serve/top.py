"""``repro top``: a live terminal dashboard over a running server.

Polls one ``repro serve`` instance's ``/metricsz``, ``/healthz``, and
``/debugz`` endpoints and renders the operational picture in place
(plain ANSI clear-and-redraw — no curses dependency, so it works in
any terminal and under CI):

* throughput (requests/s from counter deltas between polls), queue
  depth against the admission limit, shed and coalesce rates;
* windowed latency percentiles, the SLO verdict and burn rate, and
  lifetime error counts by kind;
* compile-cache hit rate and flight-recorder occupancy;
* the hottest recent requests from the flight ring (slowest first)
  with their trace ids, so the jump from "p99 looks bad" to "this
  request, this trace" is one glance.

``--once`` takes a single sample and exits; with ``--json`` the sample
is printed as one machine-readable JSON document instead of the
human rendering — the scripting mode the CI obs-smoke job drives.
Rates need two polls, so a ``--once`` sample reports totals and the
windowed SLO figures, leaving the rates at zero.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any

from .loadtest import _http_request, _parse_url

#: ANSI: home the cursor and clear to end of screen
_CLEAR = "\x1b[H\x1b[J"


@dataclass(frozen=True)
class TopConfig:
    """One dashboard session."""

    url: str = "http://127.0.0.1:8787"
    #: seconds between polls in live mode
    interval: float = 2.0
    #: hottest-request rows to show
    rows: int = 8
    #: request timeout per poll, seconds
    timeout: float = 10.0


@dataclass
class TopSample:
    """Everything one poll learned, plus rates vs. the previous poll."""

    ts: float
    ok: bool = True
    error: str | None = None
    health: dict[str, Any] = field(default_factory=dict)
    totals: dict[str, float] = field(default_factory=dict)
    rates: dict[str, float] = field(default_factory=dict)
    cache: dict[str, Any] = field(default_factory=dict)
    slo: dict[str, Any] = field(default_factory=dict)
    flight: dict[str, Any] = field(default_factory=dict)
    queue_depth: int = 0
    hottest: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "error": self.error,
            "health": self.health,
            "totals": self.totals,
            "rates": self.rates,
            "cache": self.cache,
            "slo": self.slo,
            "flight": self.flight,
            "queue_depth": self.queue_depth,
            "hottest": self.hottest,
        }


def _family_total(counters: dict[str, Any], family: str) -> float:
    """Sum every labelled series of one counter family."""
    return float(sum(
        value for name, value in counters.items()
        if name == family or name.startswith(family + "{")
    ))


class TopClient:
    """Polls one server and reduces the endpoints to :class:`TopSample`."""

    def __init__(self, config: TopConfig | None = None) -> None:
        self.config = config if config is not None else TopConfig()
        self.host, self.port = _parse_url(self.config.url)

    async def _get(self, path: str) -> dict[str, Any]:
        status, document = await _http_request(
            self.host, self.port, "GET", path,
            timeout=self.config.timeout)
        if status != 200:
            raise RuntimeError(f"GET {path} -> HTTP {status}")
        return document

    async def fetch(self) -> tuple[dict, dict, dict]:
        return await asyncio.gather(
            self._get("/metricsz"),
            self._get("/healthz"),
            self._get(f"/debugz?limit={max(self.config.rows * 4, 16)}"),
        )

    def sample(self, previous: TopSample | None = None) -> TopSample:
        """One poll; rates are deltas against ``previous`` when given."""
        now = time.monotonic()
        try:
            metrics, health, debug = asyncio.run(self.fetch())
        except Exception as exc:
            return TopSample(ts=now, ok=False,
                            error=f"{type(exc).__name__}: {exc}")

        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        totals = {
            "requests": _family_total(counters, "serve.requests"),
            "errors": _family_total(counters, "serve.errors"),
            "shed": _family_total(counters, "serve.shed"),
            "coalesced": _family_total(counters, "serve.coalesced"),
        }
        rates: dict[str, float] = {key: 0.0 for key in totals}
        if previous is not None and previous.ok:
            dt = now - previous.ts
            if dt > 0:
                rates = {
                    key: max(0.0, (totals[key]
                                   - previous.totals.get(key, 0.0)) / dt)
                    for key in totals
                }
        cache = dict(metrics.get("cache", {}))
        hits = float(cache.get("hits", 0))
        misses = float(cache.get("misses", 0))
        cache["hit_rate"] = round(hits / (hits + misses), 4) \
            if hits + misses else 0.0
        records = debug.get("records", [])
        hottest = sorted(records, key=lambda r: -r.get("duration_ms", 0.0))
        hottest = [
            {
                "trace_id": r.get("trace_id", ""),
                "endpoint": r.get("endpoint", ""),
                "status": r.get("status", 0),
                "duration_ms": r.get("duration_ms", 0.0),
                "cached": r.get("cached"),
                "coalesced": r.get("coalesced"),
                "error": r.get("error"),
            }
            for r in hottest[:self.config.rows]
        ]
        return TopSample(
            ts=now,
            health=health,
            totals=totals,
            rates=rates,
            cache=cache,
            slo=metrics.get("slo", health.get("slo", {})),
            flight=metrics.get("flight", {}),
            queue_depth=int(gauges.get("serve.queue_depth", 0)),
            hottest=hottest,
        )


def render(sample: TopSample, config: TopConfig) -> str:
    """The human rendering of one sample (no ANSI — pure text)."""
    if not sample.ok:
        return (f"repro top — {config.url}\n\n"
                f"  server unreachable: {sample.error}\n")
    health = sample.health
    slo = sample.slo or {}
    latency = slo.get("latency_ms", {})
    verdict = "OK" if slo.get("ok", True) else "BREACH"
    lines = [
        f"repro top — {config.url}    "
        f"v{health.get('version', '?')}    "
        f"up {health.get('uptime_s', 0.0):.0f}s    "
        f"cfg {health.get('config_fingerprint', '?')[:12]}",
        "",
        f"  throughput {sample.rates['requests']:8.1f} req/s    "
        f"queue {sample.queue_depth}/{health.get('queue_limit', '?')}    "
        f"shed {sample.rates['shed']:.1f}/s    "
        f"coalesce {sample.rates['coalesced']:.1f}/s",
        f"  window p50 {latency.get('p50', 0.0):8.1f} ms    "
        f"p95 {latency.get('p95', 0.0):8.1f} ms    "
        f"p99 {latency.get('p99', 0.0):8.1f} ms    "
        f"({slo.get('requests', 0)} reqs / {slo.get('window_s', 0):.0f}s)",
        f"  SLO {verdict}    "
        f"burn {slo.get('burn_rate', 0.0):.2f}    "
        f"error rate {slo.get('error_rate', 0.0):.4f} "
        f"(target {slo.get('target_error_rate', 0.0):.4f})    "
        f"errors {sample.totals['errors']:.0f} lifetime",
        f"  cache hit {sample.cache.get('hit_rate', 0.0) * 100:5.1f}%    "
        f"flight {sample.flight.get('size', 0)}/"
        f"{sample.flight.get('capacity', 0)} "
        f"(recorded {sample.flight.get('recorded', 0)}, "
        f"dumps {sample.flight.get('dumps_written', 0)})",
        "",
        "  hottest recent requests (slowest first):",
        f"  {'trace id':<20} {'endpoint':<10} {'status':>6} "
        f"{'ms':>10}  disposition",
    ]
    if not sample.hottest:
        lines.append("    (flight recorder is empty)")
    for row in sample.hottest:
        marks = []
        if row.get("cached"):
            marks.append("cached")
        if row.get("coalesced"):
            marks.append("coalesced")
        if row.get("error"):
            marks.append(f"error: {str(row['error'])[:40]}")
        lines.append(
            f"  {row['trace_id']:<20} {row['endpoint']:<10} "
            f"{row['status']:>6} {row['duration_ms']:>10.2f}  "
            f"{', '.join(marks) or '-'}"
        )
    return "\n".join(lines) + "\n"


def run_top(config: TopConfig, *, once: bool = False,
            as_json: bool = False, write=print) -> int:
    """Entry point behind the ``repro top`` subcommand.

    Returns a process exit code: 0 when the (last) sample succeeded,
    1 when the server was unreachable.
    """
    client = TopClient(config)
    sample = client.sample()
    if once:
        if as_json:
            write(json.dumps(sample.to_dict(), indent=2, sort_keys=True))
        else:
            write(render(sample, config), end="")
        return 0 if sample.ok else 1

    try:
        while True:
            write(_CLEAR + render(sample, config), end="", flush=True)
            time.sleep(config.interval)
            sample = client.sample(previous=sample)
    except KeyboardInterrupt:
        write("")  # leave the shell prompt on its own line
    return 0 if sample.ok else 1
