"""Rolling-window SLO tracking: latency percentiles, error rate, burn.

The lifetime counters on ``/metricsz`` can't answer "is the service
healthy *right now*" — a bad five minutes disappears into a good day.
:class:`SloTracker` keeps the last ``window_s`` seconds of
``(latency, error)`` observations and reduces them on demand to the
operational verdict ``/healthz`` serves:

* exact p50/p95/p99 over the window (the window is bounded, so sorting
  it is cheap and there is no bucketing error);
* the windowed error rate versus the configured target, and the **burn
  rate** — error rate divided by the error budget.  Burn rate 1.0
  means the budget is being consumed exactly as provisioned; 2.0 means
  the window is burning budget twice as fast as the SLO allows (the
  standard multi-window alerting currency, see docs/OBSERVABILITY.md);
* a latency verdict: windowed p95 against the target.

Shed requests (429) are *not* errors for SLO purposes — shedding is
the server protecting its latency SLO, and counting it as failure
would penalize the exact mechanism that keeps the SLO honest.  They
are tracked separately so ``repro top`` can still show the shed rate.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class SloConfig:
    """Targets one server is held to."""

    #: rolling window length, seconds
    window_s: float = 300.0
    #: windowed p95 latency target, milliseconds
    target_p95_ms: float = 500.0
    #: windowed error-rate budget (0.01 = 99% of requests succeed)
    target_error_rate: float = 0.01


class SloTracker:
    """Sliding-window latency/error observations + SLO reduction."""

    def __init__(self, config: SloConfig | None = None,
                 clock=time.monotonic) -> None:
        self.config = config if config is not None else SloConfig()
        self._clock = clock
        #: (monotonic_ts, latency_ms, error, shed)
        self._window: deque[tuple[float, float, bool, bool]] = deque()
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def observe(self, latency_ms: float, *, error: bool = False,
                shed: bool = False) -> None:
        now = self._clock()
        with self._lock:
            self._window.append((now, latency_ms, error, shed))
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_s
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    # -- reduction -----------------------------------------------------------

    @staticmethod
    def _percentile(ranked: list[float], q: float) -> float:
        """Exact nearest-rank percentile of a sorted sample."""
        if not ranked:
            return 0.0
        rank = max(1, -(-int(q * len(ranked) * 100) // 100))  # ceil
        return ranked[min(rank, len(ranked)) - 1]

    def snapshot(self) -> dict[str, Any]:
        """The windowed SLO verdict ``/healthz`` serves."""
        with self._lock:
            self._prune(self._clock())
            window = list(self._window)
        total = len(window)
        errors = sum(1 for _, _, error, _ in window if error)
        shed = sum(1 for _, _, _, was_shed in window if was_shed)
        served = total - shed
        latencies = sorted(latency for _, latency, _, was_shed in window
                           if not was_shed)
        error_rate = errors / served if served else 0.0
        budget = self.config.target_error_rate
        burn_rate = (error_rate / budget) if budget > 0 else 0.0
        p95 = self._percentile(latencies, 0.95)
        latency_ok = p95 <= self.config.target_p95_ms
        errors_ok = error_rate <= budget
        return {
            "window_s": self.config.window_s,
            "requests": total,
            "served": served,
            "errors": errors,
            "shed": shed,
            "error_rate": round(error_rate, 6),
            "target_error_rate": budget,
            "burn_rate": round(burn_rate, 3),
            "error_budget_remaining": round(
                max(0.0, 1.0 - burn_rate), 3),
            "latency_ms": {
                "p50": round(self._percentile(latencies, 0.50), 3),
                "p95": round(p95, 3),
                "p99": round(self._percentile(latencies, 0.99), 3),
            },
            "target_p95_ms": self.config.target_p95_ms,
            "latency_ok": latency_ok,
            "errors_ok": errors_ok,
            "ok": latency_ok and errors_ok,
        }
