"""The ``repro serve`` front door: compile-as-a-service over asyncio.

One long-lived process mounts the expensive state — a
:class:`~repro.driver.CompileCache`, a :class:`~repro.driver.BatchCompiler`,
and a :class:`~repro.telemetry.Telemetry` bundle — and serves the
``repro.api`` verbs over HTTP/1.1 JSON (docs/SERVING.md has the full
protocol).  Three serving policies keep a burst of clients from
degenerating into a pile-up:

* **bounded admission** — at most ``queue_limit`` jobs are admitted at
  once; anything beyond that is shed immediately with ``429`` and a
  ``Retry-After`` hint, so the queue cannot grow without bound;
* **request coalescing** — identical in-flight work (same compile
  fingerprint, endpoint, engine, and fuel) is computed once; followers
  await the leader's future and are answered from the same result with
  ``"coalesced": true``;
* **worker offload** — compilation and execution are CPU-bound pure
  Python, so they run on a thread pool sized by ``workers`` while the
  event loop stays responsive for admission, shedding, and health
  probes.

On top sits the runtime observability layer (docs/OBSERVABILITY.md):

* every request carries a **trace id** (the inbound
  ``X-Repro-Trace-Id`` is honoured, otherwise one is minted), echoed
  in the response header and JSON body, and its
  admission → parse → coalesce → execute stages are recorded as real
  :class:`~repro.telemetry.Tracer` spans with the worker thread's span
  forest merged in;
* every finished request lands in the :class:`FlightRecorder` ring;
  any 5xx dumps the ring to a JSONL artifact, and ``/debugz`` serves
  the ring for ``repro top`` and post-mortems;
* ``/metricsz`` content-negotiates between the JSON registry dump and
  Prometheus text exposition; ``/healthz`` carries uptime, the config
  fingerprint, and the rolling-window SLO verdict with burn rate;
* when ``log_path`` is set, one structured JSONL access/event line is
  written per request (size-rotated, see
  :class:`~repro.telemetry.JsonlLogger`).

Everything observable is counted under the ``serve.*`` metric names
(docs/TELEMETRY.md) and exposed on ``/metricsz``.
"""

from __future__ import annotations

import asyncio
import hashlib
import re
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable
from urllib.parse import parse_qs

from .. import __version__, api
from ..core.config import CompileOptions, VARIANTS
from ..driver import BatchCompiler, CompileCache, cache_key
from ..harness import SoundnessError
from ..telemetry import JsonlLogger, Telemetry, Tracer, render_prometheus
from .flight import FlightRecorder, RequestRecord
from .http import (
    HttpError,
    Request,
    Response,
    error_response,
    read_request,
)
from .protocol import (
    ProtocolError,
    ServeRequest,
    bench_response,
    compile_response,
    load_program,
    parse_request,
    profile_response,
    run_response,
)
from .slo import SloConfig, SloTracker

#: inbound trace ids must match this or they are replaced (a hostile
#: header must not be able to inject log/artifact content)
TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def make_trace_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class ServerConfig:
    """Tunable state of one :class:`ReproServer`."""

    host: str = "127.0.0.1"
    port: int = 8787  # 0 binds an ephemeral port (tests)
    #: worker threads executing compile/run jobs off the event loop
    workers: int = 2
    #: max jobs admitted at once (queued + running); beyond this, shed
    queue_limit: int = 8
    #: seconds suggested to shed clients via the Retry-After header
    retry_after: float = 0.5
    cache_dir: str | None = None  # None = memory-only cache
    cache_max_bytes: int | None = None
    #: default interpreter fuel when a request does not set one
    fuel: int = 100_000_000
    max_body_bytes: int = 4 * 1024 * 1024
    #: flight-recorder ring size (recent requests kept for /debugz)
    flight_capacity: int = 256
    #: where 5xx flight dumps land (None = no dump artifacts)
    flight_dir: str | None = None
    #: structured JSONL access/event log (None = no log file)
    log_path: str | None = None
    log_max_bytes: int = 10 * 1024 * 1024
    log_backups: int = 3
    #: rolling SLO window and targets surfaced on /healthz
    slo_window_s: float = 300.0
    slo_target_p95_ms: float = 500.0
    slo_target_error_rate: float = 0.01
    #: honour client-side fault-injection fields (``debug_fail``) —
    #: tests and the CI obs-smoke job only, never production
    debug_hooks: bool = False

    def fingerprint(self) -> str:
        """A short stable digest of every knob + the package version.

        Dashboards compare it across scrapes: a changed fingerprint (or
        a reset ``started_unix``) means they are looking at a restarted
        or reconfigured server and must not diff counters across it.
        """
        rendering = repr(sorted(asdict(self).items())) + __version__
        return hashlib.sha256(rendering.encode("utf-8")).hexdigest()[:16]


class ReproServer:
    """The asyncio server; create, ``await start()``, ``await aclose()``."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.telemetry = Telemetry(label="serve")
        self.metrics = self.telemetry.metrics
        self.cache = CompileCache(
            self.config.cache_dir,
            max_bytes=self.config.cache_max_bytes,
            metrics=self.metrics,
        )
        # jobs=1: the service parallelises across requests via the
        # thread pool; a process pool per request would fight it.
        self.driver = BatchCompiler(jobs=1, cache=self.cache,
                                    metrics=self.metrics,
                                    telemetry=self.telemetry)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        #: coalescing table: job key -> Future[("ok", dict) | ("error", exc)]
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._pending = 0
        self._server: asyncio.AbstractServer | None = None
        self.port = self.config.port
        self.started_unix = time.time()
        self.config_fingerprint = self.config.fingerprint()
        self.flight = FlightRecorder(
            capacity=self.config.flight_capacity,
            dump_dir=self.config.flight_dir,
        )
        self.slo = SloTracker(SloConfig(
            window_s=self.config.slo_window_s,
            target_p95_ms=self.config.slo_target_p95_ms,
            target_error_rate=self.config.slo_target_error_rate,
        ))
        self.log: JsonlLogger | None = None
        if self.config.log_path:
            self.log = JsonlLogger(self.config.log_path,
                                   max_bytes=self.config.log_max_bytes,
                                   backups=self.config.log_backups)
            self.log.info("server-init", version=__version__,
                          config_fingerprint=self.config_fingerprint)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.log is not None:
            self.log.info("server-start", host=self.config.host,
                          port=self.port)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.driver.close()
        if self.log is not None:
            self.log.info("server-stop",
                          requests=self.flight.stats()["recorded"])

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes)
                except HttpError as exc:
                    # The stream may be desynchronized: answer and close.
                    self.metrics.counter("serve.errors", kind="http").inc()
                    writer.write(error_response(
                        exc.status, exc.message, keep_alive=False).to_bytes())
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                response.keep_alive = (response.keep_alive
                                       and request.keep_alive)
                writer.write(response.to_bytes())
                await writer.drain()
                if not response.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _trace_id(self, request: Request) -> str:
        inbound = request.headers.get("x-repro-trace-id", "")
        if inbound and TRACE_ID_RE.match(inbound):
            return inbound
        return make_trace_id()

    async def _dispatch(self, request: Request) -> Response:
        loop = asyncio.get_running_loop()
        started = loop.time()
        started_unix = time.time()
        trace_id = self._trace_id(request)
        tracer = Tracer(process_name=f"serve:{trace_id}")
        endpoint, response = await self._route(request, trace_id, tracer)
        elapsed_ms = (loop.time() - started) * 1000

        self.metrics.counter("serve.requests", endpoint=endpoint).inc()
        self.metrics.counter("serve.responses",
                             status=response.status).inc()
        self.metrics.histogram("serve.latency_ms",
                               endpoint=endpoint).observe(elapsed_ms)
        if response.status >= 400:
            kind = response.error_kind or (
                "client" if response.status < 500 else "internal")
            self.metrics.counter("serve.errors", kind=kind).inc()
        self.slo.observe(elapsed_ms, error=response.status >= 500,
                         shed=response.status == 429)

        # The trace id rides on every response, header and body alike,
        # so clients and logs correlate without parsing either twice.
        response.headers.append(("X-Repro-Trace-Id", trace_id))
        payload = response.payload
        if isinstance(payload, dict):
            payload.setdefault("trace_id", trace_id)

        dump = self._record_flight(request, endpoint, response, trace_id,
                                   tracer, started_unix, elapsed_ms)
        self._log_request(request, endpoint, response, trace_id,
                          elapsed_ms, dump)
        return response

    def _record_flight(self, request: Request, endpoint: str,
                       response: Response, trace_id: str, tracer: Tracer,
                       started_unix: float,
                       elapsed_ms: float) -> Path | None:
        payload = response.payload if isinstance(response.payload, dict) \
            else {}
        stages: dict[str, float] = {}
        for span in tracer.walk():
            stages.setdefault(span.name, span.duration_us / 1000)
        record = RequestRecord(
            trace_id=trace_id,
            endpoint=endpoint,
            method=request.method,
            status=response.status,
            started_unix=started_unix,
            duration_ms=elapsed_ms,
            stages=stages,
            cached=payload.get("cached"),
            coalesced=payload.get("coalesced"),
            error=payload.get("error"),
            spans=tracer.to_dict(),
        )
        return self.flight.record(record)

    def _log_request(self, request: Request, endpoint: str,
                     response: Response, trace_id: str, elapsed_ms: float,
                     dump: Path | None) -> None:
        if self.log is None:
            return
        severity = ("error" if response.status >= 500
                    else "warning" if response.status >= 400
                    else "info")
        payload = response.payload if isinstance(response.payload, dict) \
            else {}
        fields: dict[str, Any] = {
            "trace_id": trace_id,
            "method": request.method,
            "endpoint": endpoint,
            "status": response.status,
            "duration_ms": round(elapsed_ms, 3),
        }
        for key in ("cached", "coalesced"):
            if payload.get(key) is not None:
                fields[key] = payload[key]
        if payload.get("error"):
            fields["error"] = payload["error"]
        if response.error_kind:
            fields["kind"] = response.error_kind
        if dump is not None:
            fields["flight_dump"] = str(dump)
        self.log.log(severity, "request", **fields)

    async def _route(self, request: Request, trace_id: str,
                     tracer: Tracer) -> tuple[str, Response]:
        """Resolve one request to ``(endpoint label, response)``."""
        target, _, query = request.target.partition("?")
        if target == "/healthz":
            if request.method != "GET":
                return "healthz", error_response(405, "healthz is GET-only")
            return "healthz", Response(payload=self._health())
        if target == "/metricsz":
            if request.method != "GET":
                return "metricsz", error_response(405, "metricsz is GET-only")
            return "metricsz", self._metricsz_response(request, query)
        if target == "/debugz":
            if request.method != "GET":
                return "debugz", error_response(405, "debugz is GET-only")
            return "debugz", Response(payload=self._debugz(query))
        if target.startswith("/v1/"):
            endpoint = target[len("/v1/"):]
            if request.method != "POST":
                return endpoint, error_response(
                    405, f"/v1/{endpoint} is POST-only")
            return endpoint, await self._serve_job(endpoint, request,
                                                   trace_id, tracer)
        return "unknown", error_response(
            404, f"no such endpoint {target!r}", kind="not_found")

    def _health(self) -> dict[str, Any]:
        slo = self.slo.snapshot()
        return {
            # Liveness stays HTTP 200 either way; "degraded" flags an
            # SLO breach without making health probes kill the server.
            "status": "ok" if slo["ok"] else "degraded",
            "version": __version__,
            "pending": self._pending,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "started_unix": round(self.started_unix, 3),
            "uptime_s": round(time.time() - self.started_unix, 3),
            "config_fingerprint": self.config_fingerprint,
            "slo": slo,
            "flight": self.flight.stats(),
        }

    def _metricsz_response(self, request: Request, query: str) -> Response:
        """JSON by default; Prometheus text when negotiated.

        ``?format=prometheus|json`` wins; otherwise an ``Accept``
        header asking for ``text/plain`` or OpenMetrics selects the
        text exposition.
        """
        params = parse_qs(query)
        form = (params.get("format") or [""])[0]
        accept = request.headers.get("accept", "")
        wants_text = form == "prometheus" or (
            not form and ("text/plain" in accept
                          or "application/openmetrics-text" in accept))
        if wants_text:
            self._refresh_runtime_gauges()
            text = render_prometheus(self.metrics)
            return Response(
                body=text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        return Response(payload=self._metricsz())

    def _refresh_runtime_gauges(self) -> None:
        """Point-in-time state worth scraping but not worth a hot-path
        write on every request."""
        self.metrics.gauge("serve.uptime_s").set(
            round(time.time() - self.started_unix, 3))
        for name, value in self.flight.stats().items():
            self.metrics.gauge(f"serve.flight_{name}").set(value)
        slo = self.slo.snapshot()
        self.metrics.gauge("serve.slo_burn_rate").set(slo["burn_rate"])
        self.metrics.gauge("serve.slo_error_rate").set(slo["error_rate"])
        self.metrics.gauge("serve.slo_window_p95_ms").set(
            slo["latency_ms"]["p95"])
        self.metrics.gauge("serve.slo_ok").set(1.0 if slo["ok"] else 0.0)

    def _metricsz(self) -> dict[str, Any]:
        document = self.metrics.as_dict()
        document["cache"] = {
            k: v for k, v in self.cache.stats().items()
            if isinstance(v, (int, float))
        }
        document["flight"] = self.flight.stats()
        document["slo"] = self.slo.snapshot()
        document["server"] = {
            "version": __version__,
            "started_unix": round(self.started_unix, 3),
            "uptime_s": round(time.time() - self.started_unix, 3),
            "config_fingerprint": self.config_fingerprint,
        }
        return document

    def _debugz(self, query: str) -> dict[str, Any]:
        """The flight-recorder ring, newest first, with filters."""
        params = parse_qs(query)

        def _one(name: str) -> str | None:
            values = params.get(name)
            return values[0] if values else None

        limit_text = _one("limit")
        try:
            limit = int(limit_text) if limit_text else 32
        except ValueError:
            limit = 32
        min_status: int | None = None
        status_text = _one("min_status")
        if status_text:
            try:
                min_status = int(status_text)
            except ValueError:
                min_status = None
        if _one("errors") in ("1", "true"):
            min_status = max(min_status or 0, 400)
        records = self.flight.snapshot(
            limit=limit,
            trace_id=_one("trace"),
            min_status=min_status,
        )
        return {
            "records": records,
            "flight": self.flight.stats(),
            "server": {
                "version": __version__,
                "started_unix": round(self.started_unix, 3),
                "config_fingerprint": self.config_fingerprint,
            },
        }

    # -- the job pipeline ----------------------------------------------------

    async def _serve_job(self, endpoint: str, request: Request,
                         trace_id: str, tracer: Tracer) -> Response:
        """Admission -> parse -> coalesce -> execute, with error mapping."""
        with tracer.span("request", category="serve", endpoint=endpoint,
                         trace_id=trace_id):
            with tracer.span("admission", category="serve") as admission:
                if self._pending >= self.config.queue_limit:
                    self.metrics.counter("serve.shed").inc()
                    admission.annotate(shed=True)
                    return error_response(
                        429,
                        f"{self._pending} jobs already admitted "
                        f"(queue_limit={self.config.queue_limit}); "
                        f"retry shortly",
                        headers=[("Retry-After",
                                  format(self.config.retry_after, "g"))],
                        kind="shed",
                    )
                self._pending += 1
                self.metrics.gauge("serve.queue_depth").set(self._pending)
            try:
                with tracer.span("parse", category="serve"):
                    payload = request.json()
                    job = parse_request(endpoint, payload,
                                        default_fuel=self.config.fuel)
                if self.config.debug_hooks and isinstance(payload, dict) \
                        and payload.get("debug_fail"):
                    raise RuntimeError(
                        "debug_fail requested by client (debug hook)")
                result = await self._coalesced(job, trace_id, tracer)
                return Response(payload=result)
            except HttpError as exc:
                return error_response(exc.status, exc.message,
                                      kind="bad_request")
            except ProtocolError as exc:
                kind = "not_found" if exc.status == 404 else "protocol"
                return error_response(exc.status, str(exc), kind=kind)
            except SoundnessError as exc:
                return error_response(
                    500, f"soundness check failed: {exc}", kind="soundness")
            except Exception as exc:  # noqa: BLE001 — a job must never kill the loop
                return error_response(500, f"{type(exc).__name__}: {exc}",
                                      kind="internal")
            finally:
                self._pending -= 1
                self.metrics.gauge("serve.queue_depth").set(self._pending)

    async def _coalesced(self, job: ServeRequest, trace_id: str,
                         tracer: Tracer) -> dict[str, Any]:
        """Run one job, sharing the result with identical in-flight jobs."""
        loop = asyncio.get_running_loop()
        # The prepare stage (parse + fingerprint) is itself CPU work.
        with tracer.span("coalesce", category="serve"):
            with tracer.span("prepare", category="serve"):
                key, work = await loop.run_in_executor(
                    self._executor, self._prepare, job, trace_id)

            leader_future = self._inflight.get(key)
            if leader_future is not None:
                self.metrics.counter("serve.coalesced",
                                     endpoint=job.endpoint).inc()
                # shield(): a follower disconnecting must not cancel the
                # leader's computation out from under the other waiters.
                with tracer.span("await-leader", category="serve"):
                    status, value = await asyncio.shield(leader_future)
                if status == "error":
                    raise value
                return dict(value, coalesced=True)

            future: asyncio.Future = loop.create_future()
            self._inflight[key] = future
            try:
                with tracer.span("execute", category="serve"):
                    result, worker = await loop.run_in_executor(
                        self._executor, self._traced_work, work, trace_id,
                        job.endpoint)
                tracer.merge(worker)
            except Exception as exc:
                future.set_result(("error", exc))
                raise
            else:
                future.set_result(("ok", result))
                return dict(result, coalesced=False)
            finally:
                del self._inflight[key]

    def _traced_work(self, work: Callable, trace_id: str,
                     endpoint: str) -> tuple[dict[str, Any], Tracer]:
        """Run ``work`` on this worker thread under its own tracer.

        The worker tracer has its own monotonic epoch, exactly like a
        pool process would; the caller rebases it into the request's
        timeline with :meth:`Tracer.merge`.
        """
        worker = Tracer(process_name=f"worker:{trace_id}")
        with worker.span(f"work:{endpoint}", category="worker",
                         thread=threading.current_thread().name):
            result = work()
        return result, worker

    def _prepare(self, job: ServeRequest,
                 trace_id: str) -> tuple[tuple, Callable]:
        """Resolve a job to its coalescing key and a thunk of the work.

        Runs on a worker thread.  The key reuses the compile cache's
        content fingerprint, so two textually different requests that
        parse to the same IR under the same config coalesce too.  The
        trace id rides along into the driver so worker-side span
        forests stay correlated with the request.
        """
        options = CompileOptions(
            variant=job.variant,
            machine=job.machine,
            engine=job.engine,
            fuel=job.fuel,
            cache=False,  # the server's driver already owns the cache
        )
        if job.endpoint == "bench":
            names = job.variants or ("baseline", "new algorithm (all)")
            variants = {name: VARIANTS[name] for name in names}
            key = ("bench", job.workload, names, job.machine, job.engine,
                   job.fuel)
            return key, lambda: bench_response(
                api.bench([job.workload], variants, options,
                          driver=self.driver),
                job.workload,
            )

        program = load_program(job)
        config = options.config()
        fingerprint = cache_key(program, config, None)
        key = (job.endpoint, fingerprint, job.engine, job.fuel)

        if job.endpoint == "compile":
            cached = fingerprint in self.cache
            return key, lambda: compile_response(
                api.compile(program, options, driver=self.driver,
                            trace_id=trace_id),
                cache_key=fingerprint,
                cached=cached,
            )
        if job.endpoint == "run":
            return key, lambda: run_response(
                api.run(program, options, driver=self.driver,
                        trace_id=trace_id))
        # profile — api.profile compiles inline (no driver hook yet)
        return key, lambda: profile_response(
            api.profile(program, options, workload=job.workload or ""))


class ServerThread:
    """A server on a private event loop in a daemon thread.

    The harness the load-test client's ``--spawn`` flag and the test
    suite share: start, read ``base_url``, stop.  The constructor does
    not bind; :meth:`start` does, and re-raises any bind error in the
    caller's thread.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig(port=0)
        self.server: ReproServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def base_url(self) -> str:
        assert self.server is not None, "call start() first"
        return f"http://{self.config.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(), self._loop)
        future.result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.server = ReproServer(self.config)
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        if self.server is not None:
            await self.server.aclose()
