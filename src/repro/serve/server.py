"""The ``repro serve`` front door: compile-as-a-service over asyncio.

One long-lived process mounts the expensive state — a
:class:`~repro.driver.CompileCache`, a :class:`~repro.driver.BatchCompiler`,
and a :class:`~repro.telemetry.Telemetry` bundle — and serves the
``repro.api`` verbs over HTTP/1.1 JSON (docs/SERVING.md has the full
protocol).  Three serving policies keep a burst of clients from
degenerating into a pile-up:

* **bounded admission** — at most ``queue_limit`` jobs are admitted at
  once; anything beyond that is shed immediately with ``429`` and a
  ``Retry-After`` hint, so the queue cannot grow without bound;
* **request coalescing** — identical in-flight work (same compile
  fingerprint, endpoint, engine, and fuel) is computed once; followers
  await the leader's future and are answered from the same result with
  ``"coalesced": true``;
* **worker offload** — compilation and execution are CPU-bound pure
  Python, so they run on a thread pool sized by ``workers`` while the
  event loop stays responsive for admission, shedding, and health
  probes.

Everything observable is counted under the ``serve.*`` metric names
(docs/TELEMETRY.md) and exposed on ``/metricsz``.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from .. import __version__, api
from ..core.config import CompileOptions, VARIANTS
from ..driver import BatchCompiler, CompileCache, cache_key
from ..harness import SoundnessError
from ..telemetry import Telemetry
from .http import (
    HttpError,
    Request,
    Response,
    error_response,
    read_request,
)
from .protocol import (
    ProtocolError,
    ServeRequest,
    bench_response,
    compile_response,
    load_program,
    parse_request,
    profile_response,
    run_response,
)


@dataclass(frozen=True)
class ServerConfig:
    """Tunable state of one :class:`ReproServer`."""

    host: str = "127.0.0.1"
    port: int = 8787  # 0 binds an ephemeral port (tests)
    #: worker threads executing compile/run jobs off the event loop
    workers: int = 2
    #: max jobs admitted at once (queued + running); beyond this, shed
    queue_limit: int = 8
    #: seconds suggested to shed clients via the Retry-After header
    retry_after: float = 0.5
    cache_dir: str | None = None  # None = memory-only cache
    cache_max_bytes: int | None = None
    #: default interpreter fuel when a request does not set one
    fuel: int = 100_000_000
    max_body_bytes: int = 4 * 1024 * 1024


class ReproServer:
    """The asyncio server; create, ``await start()``, ``await aclose()``."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.telemetry = Telemetry(label="serve")
        self.metrics = self.telemetry.metrics
        self.cache = CompileCache(
            self.config.cache_dir,
            max_bytes=self.config.cache_max_bytes,
            metrics=self.metrics,
        )
        # jobs=1: the service parallelises across requests via the
        # thread pool; a process pool per request would fight it.
        self.driver = BatchCompiler(jobs=1, cache=self.cache,
                                    metrics=self.metrics,
                                    telemetry=self.telemetry)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        #: coalescing table: job key -> Future[("ok", dict) | ("error", exc)]
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._pending = 0
        self._server: asyncio.AbstractServer | None = None
        self.port = self.config.port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.driver.close()

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes)
                except HttpError as exc:
                    # The stream may be desynchronized: answer and close.
                    writer.write(error_response(
                        exc.status, exc.message, keep_alive=False).to_bytes())
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                response.keep_alive = (response.keep_alive
                                       and request.keep_alive)
                writer.write(response.to_bytes())
                await writer.drain()
                if not response.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        loop = asyncio.get_running_loop()
        started = loop.time()
        endpoint, response = await self._route(request)
        elapsed_ms = (loop.time() - started) * 1000
        self.metrics.counter("serve.requests", endpoint=endpoint).inc()
        self.metrics.counter("serve.responses",
                             status=response.status).inc()
        self.metrics.histogram("serve.latency_ms",
                               endpoint=endpoint).observe(elapsed_ms)
        return response

    async def _route(self, request: Request) -> tuple[str, Response]:
        """Resolve one request to ``(endpoint label, response)``."""
        target = request.target.split("?", 1)[0]
        if target == "/healthz":
            if request.method != "GET":
                return "healthz", error_response(405, "healthz is GET-only")
            return "healthz", Response(payload=self._health())
        if target == "/metricsz":
            if request.method != "GET":
                return "metricsz", error_response(405, "metricsz is GET-only")
            return "metricsz", Response(payload=self._metricsz())
        if target.startswith("/v1/"):
            endpoint = target[len("/v1/"):]
            if request.method != "POST":
                return endpoint, error_response(
                    405, f"/v1/{endpoint} is POST-only")
            return endpoint, await self._serve_job(endpoint, request)
        return "unknown", error_response(404, f"no such endpoint {target!r}")

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "pending": self._pending,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
        }

    def _metricsz(self) -> dict[str, Any]:
        document = self.metrics.as_dict()
        document["cache"] = {
            k: v for k, v in self.cache.stats().items()
            if isinstance(v, (int, float))
        }
        return document

    # -- the job pipeline ----------------------------------------------------

    async def _serve_job(self, endpoint: str, request: Request) -> Response:
        """Admission -> parse -> coalesce -> execute, with error mapping."""
        if self._pending >= self.config.queue_limit:
            self.metrics.counter("serve.shed").inc()
            return error_response(
                429,
                f"{self._pending} jobs already admitted "
                f"(queue_limit={self.config.queue_limit}); retry shortly",
                headers=[("Retry-After",
                          format(self.config.retry_after, "g"))],
            )
        self._pending += 1
        self.metrics.gauge("serve.queue_depth").set(self._pending)
        try:
            payload = request.json()
            job = parse_request(endpoint, payload,
                                default_fuel=self.config.fuel)
            result = await self._coalesced(job)
            return Response(payload=result)
        except HttpError as exc:
            return error_response(exc.status, exc.message)
        except ProtocolError as exc:
            return error_response(exc.status, str(exc))
        except SoundnessError as exc:
            self.metrics.counter("serve.errors", kind="soundness").inc()
            return error_response(500, f"soundness check failed: {exc}")
        except Exception as exc:  # noqa: BLE001 — a job must never kill the loop
            self.metrics.counter("serve.errors", kind="internal").inc()
            return error_response(500, f"{type(exc).__name__}: {exc}")
        finally:
            self._pending -= 1
            self.metrics.gauge("serve.queue_depth").set(self._pending)

    async def _coalesced(self, job: ServeRequest) -> dict[str, Any]:
        """Run one job, sharing the result with identical in-flight jobs."""
        loop = asyncio.get_running_loop()
        # The prepare stage (parse + fingerprint) is itself CPU work.
        key, work = await loop.run_in_executor(
            self._executor, self._prepare, job)

        leader_future = self._inflight.get(key)
        if leader_future is not None:
            self.metrics.counter("serve.coalesced",
                                 endpoint=job.endpoint).inc()
            # shield(): a follower disconnecting must not cancel the
            # leader's computation out from under the other waiters.
            status, value = await asyncio.shield(leader_future)
            if status == "error":
                raise value
            return dict(value, coalesced=True)

        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            result = await loop.run_in_executor(self._executor, work)
        except Exception as exc:
            future.set_result(("error", exc))
            raise
        else:
            future.set_result(("ok", result))
            return dict(result, coalesced=False)
        finally:
            del self._inflight[key]

    def _prepare(self, job: ServeRequest) -> tuple[tuple, Callable]:
        """Resolve a job to its coalescing key and a thunk of the work.

        Runs on a worker thread.  The key reuses the compile cache's
        content fingerprint, so two textually different requests that
        parse to the same IR under the same config coalesce too.
        """
        options = CompileOptions(
            variant=job.variant,
            machine=job.machine,
            engine=job.engine,
            fuel=job.fuel,
            cache=False,  # the server's driver already owns the cache
        )
        if job.endpoint == "bench":
            names = job.variants or ("baseline", "new algorithm (all)")
            variants = {name: VARIANTS[name] for name in names}
            key = ("bench", job.workload, names, job.machine, job.engine,
                   job.fuel)
            return key, lambda: bench_response(
                api.bench([job.workload], variants, options,
                          driver=self.driver),
                job.workload,
            )

        program = load_program(job)
        config = options.config()
        fingerprint = cache_key(program, config, None)
        key = (job.endpoint, fingerprint, job.engine, job.fuel)

        if job.endpoint == "compile":
            cached = fingerprint in self.cache
            return key, lambda: compile_response(
                api.compile(program, options, driver=self.driver),
                cache_key=fingerprint,
                cached=cached,
            )
        if job.endpoint == "run":
            return key, lambda: run_response(
                api.run(program, options, driver=self.driver))
        # profile — api.profile compiles inline (no driver hook yet)
        return key, lambda: profile_response(
            api.profile(program, options, workload=job.workload or ""))


class ServerThread:
    """A server on a private event loop in a daemon thread.

    The harness the load-test client's ``--spawn`` flag and the test
    suite share: start, read ``base_url``, stop.  The constructor does
    not bind; :meth:`start` does, and re-raises any bind error in the
    caller's thread.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig(port=0)
        self.server: ReproServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def base_url(self) -> str:
        assert self.server is not None, "call start() first"
        return f"http://{self.config.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(), self._loop)
        future.result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.server = ReproServer(self.config)
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        if self.server is not None:
            await self.server.aclose()
