"""The flight recorder: a bounded ring of recent per-request records.

``/metricsz`` answers "how is the service doing"; the flight recorder
answers "what just happened".  Every request the server finishes —
success, shed, or failure — leaves one :class:`RequestRecord` in a
bounded ring buffer (oldest evicted first), carrying everything a
post-mortem needs: trace id, endpoint, status, per-stage timings from
the request's span tree, cache/coalesce disposition, and the error
message when there was one.

Two consumers:

* ``/debugz`` serves the ring as JSON (filterable by trace id and
  status class) — the data source for ``repro top``'s hottest-requests
  panel and for the load-test client's client/server span correlation;
* on any 5xx the *entire* ring is dumped to a JSONL artifact under
  ``dump_dir`` (``flight-<trace_id>.jsonl``), so the moments leading
  up to a failure survive the process.

Everything is O(1) per request and lock-guarded: records arrive from
the event loop, readers may be CLI threads.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass
class RequestRecord:
    """One finished request, as the flight recorder remembers it."""

    trace_id: str
    endpoint: str
    method: str
    status: int
    #: wall-clock admission time (unix seconds) — for humans; ordering
    #: within the ring comes from the monotonic ``seq``
    started_unix: float
    duration_ms: float
    #: span name -> duration_ms for the serve-side stages
    #: (admission/parse/coalesce/execute and the merged worker forest)
    stages: dict[str, float] = field(default_factory=dict)
    cached: bool | None = None
    coalesced: bool | None = None
    error: str | None = None
    #: the request's full span forest (Tracer.to_dict rendering)
    spans: list[dict[str, Any]] = field(default_factory=list)
    seq: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "trace_id": self.trace_id,
            "endpoint": self.endpoint,
            "method": self.method,
            "status": self.status,
            "started_unix": round(self.started_unix, 6),
            "duration_ms": round(self.duration_ms, 3),
            "stages": {name: round(ms, 3)
                       for name, ms in self.stages.items()},
            "cached": self.cached,
            "coalesced": self.coalesced,
            "error": self.error,
            "spans": self.spans,
        }


class FlightRecorder:
    """Ring buffer of :class:`RequestRecord` + 5xx dump artifacts."""

    def __init__(self, capacity: int = 256,
                 dump_dir: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._ring: deque[RequestRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.recorded = 0
        self.dumps_written = 0

    # -- recording -----------------------------------------------------------

    def record(self, record: RequestRecord) -> Path | None:
        """Add one record; returns the dump path when one was written."""
        with self._lock:
            self._seq += 1
            record.seq = self._seq
            self._ring.append(record)
            self.recorded += 1
            if record.status >= 500 and self.dump_dir is not None:
                return self._dump(record)
        return None

    def _dump(self, trigger: RequestRecord) -> Path:
        """Write the whole ring, oldest first, as one JSONL artifact.

        Called under the lock.  The artifact is named after the
        triggering request's trace id so a 500's server logs, error
        payload, and dump all correlate on the same token.
        """
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        path = self.dump_dir / (
            f"flight-{trigger.seq:08d}-{trigger.trace_id}.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._ring:
                handle.write(json.dumps(record.to_dict(), sort_keys=True)
                             + "\n")
        self.dumps_written += 1
        return path

    # -- queries -------------------------------------------------------------

    def snapshot(self, *, limit: int | None = None,
                 trace_id: str | None = None,
                 min_status: int | None = None) -> list[dict[str, Any]]:
        """Recent records, newest first, optionally filtered."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        if trace_id is not None:
            records = [r for r in records if r.trace_id == trace_id]
        if min_status is not None:
            records = [r for r in records if r.status >= min_status]
        if limit is not None:
            records = records[:max(limit, 0)]
        return [r.to_dict() for r in records]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._ring),
                "recorded": self.recorded,
                "dumps_written": self.dumps_written,
            }
