"""Wire protocol of the compile service: schemas in, schemas out.

One module owns every JSON shape that crosses the wire, so the server,
the load-test client, and the tests all agree byte-for-byte on what a
response looks like (docs/SERVING.md documents the schemas).  Two rules
keep responses comparable across processes and hosts:

* **responses are pure functions of repro results** — the builders
  below take :class:`~repro.api.RunResult` / ``CompileResult`` /
  profile objects and render them deterministically (sorted keys,
  stable field set), so the load-test client can compute the *expected*
  response locally with ``repro.api`` and compare for bit-identity;
* **volatile fields are segregated** — anything that legitimately
  differs between a served and a local execution (wall-clock timing,
  cache/coalescing disposition) lives under the keys named in
  :data:`VOLATILE_KEYS`, which comparators strip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.config import DEFAULT_VARIANT, VARIANTS
from ..machine import MACHINES

#: response keys that may differ between a served and a local run
VOLATILE_KEYS = frozenset({
    "cached", "coalesced", "timing_ms", "cache_key", "server", "trace_id",
})

_ENGINES = ("closure", "reference", "codegen", "both")
_ENDPOINTS = ("compile", "run", "bench", "profile")

#: serving defaults; requests may lower but not raise the fuel budget
MAX_FUEL = 1_000_000_000


class ProtocolError(Exception):
    """A request the protocol rejects; carries the HTTP status."""

    def __init__(self, message: str, status: int = 400) -> None:
        self.status = status
        super().__init__(message)


@dataclass(frozen=True)
class ServeRequest:
    """One validated request to a ``/v1/*`` endpoint."""

    endpoint: str
    source: str | None
    workload: str | None
    variant: str
    machine: str
    engine: str
    fuel: int
    #: bench only — variant names to sweep (``None`` = baseline + full)
    variants: tuple[str, ...] | None = None

    @property
    def label(self) -> str:
        return self.workload or "request"


def _expect_str(payload: dict, key: str) -> str | None:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise ProtocolError(f"{key!r} must be a string")
    return value


def parse_request(endpoint: str, payload: Any, *,
                  default_fuel: int = 100_000_000) -> ServeRequest:
    """Validate one JSON body into a :class:`ServeRequest`."""
    if endpoint not in _ENDPOINTS:
        raise ProtocolError(f"unknown endpoint {endpoint!r}", status=404)
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")

    source = _expect_str(payload, "source")
    workload = _expect_str(payload, "workload")
    if endpoint == "bench":
        if source is not None:
            raise ProtocolError("bench serves registry workloads only; "
                                "pass 'workload', not 'source'")
        if workload is None:
            raise ProtocolError("bench requires 'workload'")
    elif (source is None) == (workload is None):
        raise ProtocolError(
            "exactly one of 'source' (J32 text) or 'workload' "
            "(registry name) is required"
        )

    variant = _expect_str(payload, "variant") or DEFAULT_VARIANT
    if variant not in VARIANTS:
        raise ProtocolError(
            f"unknown variant {variant!r}; one of: "
            + ", ".join(sorted(VARIANTS))
        )
    machine = _expect_str(payload, "machine") or "ia64"
    if machine not in MACHINES:
        raise ProtocolError(
            f"unknown machine {machine!r}; one of: "
            + ", ".join(sorted(MACHINES))
        )
    engine = _expect_str(payload, "engine") or "closure"
    if engine not in _ENGINES:
        raise ProtocolError(
            f"unknown engine {engine!r}; one of: " + ", ".join(_ENGINES)
        )

    fuel = payload.get("fuel", default_fuel)
    if not isinstance(fuel, int) or isinstance(fuel, bool) or fuel <= 0:
        raise ProtocolError("'fuel' must be a positive integer")
    if fuel > MAX_FUEL:
        raise ProtocolError(f"'fuel' exceeds the serving cap {MAX_FUEL}")

    variants: tuple[str, ...] | None = None
    if "variants" in payload:
        if endpoint != "bench":
            raise ProtocolError("'variants' is a bench-only field")
        raw = payload["variants"]
        if (not isinstance(raw, list) or not raw
                or not all(isinstance(v, str) for v in raw)):
            raise ProtocolError("'variants' must be a non-empty list of "
                                "variant names")
        unknown = [v for v in raw if v not in VARIANTS]
        if unknown:
            raise ProtocolError(f"unknown variants: {', '.join(unknown)}")
        variants = tuple(dict.fromkeys(raw))  # dedup, keep order

    return ServeRequest(
        endpoint=endpoint,
        source=source,
        workload=workload,
        variant=variant,
        machine=machine,
        engine=engine,
        fuel=fuel,
        variants=variants,
    )


def load_program(request: ServeRequest):
    """The :class:`Program` a request names; 400 on bad source/name."""
    from ..frontend import compile_source
    from ..frontend.errors import SourceError
    from ..workloads import JBYTEMARK, SPECJVM98, get_workload

    if request.workload is not None:
        if request.workload not in JBYTEMARK + SPECJVM98:
            raise ProtocolError(
                f"unknown workload {request.workload!r}; one of: "
                + ", ".join(JBYTEMARK + SPECJVM98)
            )
        return get_workload(request.workload).program()
    try:
        return compile_source(request.source, "request")
    except SourceError as exc:
        raise ProtocolError(f"source does not compile: {exc}") from exc


# -- response builders --------------------------------------------------------
#
# Builders are deterministic renderings of repro results.  The load-test
# client calls the same builders on locally computed results, strips
# VOLATILE_KEYS from both sides, and requires equality.

def compile_response(result, *, cache_key: str = "",
                     cached: bool = False) -> dict[str, Any]:
    """Render one :class:`~repro.core.pipeline.CompileResult`."""
    return {
        "static_extends": result.static_extend_count,
        "eliminated": result.total_eliminated,
        "function_stats": {
            name: {
                "candidates": stats.candidates,
                "eliminated": stats.eliminated,
            }
            for name, stats in sorted(result.function_stats.items())
        },
        "timing_ms": round(result.timing.total() * 1000, 3),
        "cache_key": cache_key,
        "cached": cached,
    }


def run_response(outcome) -> dict[str, Any]:
    """Render one :class:`~repro.api.RunResult` — the bit-identity
    contract: a served run and a local ``repro.api.run`` of the same
    request must produce equal dicts (after stripping volatile keys).
    """
    return {
        "ret_value": outcome.ret_value,
        "checksum": outcome.checksum,
        "gold_checksum": outcome.gold_checksum,
        "verified": bool(outcome.verified),
        "steps": outcome.steps,
        "extend_counts": {
            str(width): count
            for width, count in sorted(outcome.extend_counts.items())
        },
        "cycles": {
            "total": outcome.cycles.total,
            "extend_cycles": outcome.cycles.extend_cycles,
        },
        "static_extends": outcome.compile.static_extend_count,
        "eliminated": outcome.compile.total_eliminated,
    }


def bench_response(suite, workload: str) -> dict[str, Any]:
    """Render one workload's cells of a :class:`~repro.api.SuiteResult`."""
    results = suite.workload(workload)
    return {
        "workload": workload,
        "gold_checksum": results.gold_checksum,
        "cells": {
            name: {
                "dyn_extend32": cell.dyn_extend32,
                "dyn_extend16": cell.dyn_extend16,
                "dyn_extend8": cell.dyn_extend8,
                "static_extends": cell.static_extends,
                "steps": cell.steps,
                "cycles": cell.cycles.total,
                "extend_cycles": cell.cycles.extend_cycles,
            }
            for name, cell in sorted(results.cells.items())
        },
    }


def profile_response(outcome, *, top: int = 10) -> dict[str, Any]:
    """Render one :class:`~repro.api.ProfileResult` (hot-block summary)."""
    prof = outcome.profile
    document = prof.to_dict()
    hot: list[dict[str, Any]] = []
    for func in document.get("functions", []):
        for block in func.get("blocks", []):
            hot.append({
                "function": func["name"],
                "block": block["label"],
                "entries": block["entries"],
                "self_cycles": block["self_cycles"],
            })
    hot.sort(key=lambda b: (-b["self_cycles"], b["function"], b["block"]))
    return {
        "workload": prof.workload,
        "program": prof.program,
        "total_cycles": prof.total_cycles,
        "fingerprint": document.get("fingerprint", ""),
        "hot_blocks": hot[:top],
        "static_extends": outcome.compile.static_extend_count,
        "eliminated": outcome.compile.total_eliminated,
    }


def strip_volatile(document: dict[str, Any]) -> dict[str, Any]:
    """A copy of ``document`` without the fields that may legitimately
    differ between a served and a locally computed response."""
    return {k: v for k, v in document.items() if k not in VOLATILE_KEYS}
