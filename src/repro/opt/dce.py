"""Dead code elimination over DU chains.

Removes side-effect-free instructions whose definitions have no uses,
iterating because removing one use can make its operands' definitions
dead too.
"""

from __future__ import annotations

from ..analysis.ud_du import Chains
from ..ir.function import Function

_MAX_ROUNDS = 50


def eliminate_dead_code(func: Function) -> bool:
    changed_any = False
    for _ in range(_MAX_ROUNDS):
        chains = Chains(func)
        dead = []
        for block in func.blocks:
            for instr in block.instrs:
                if instr.dest is None or instr.has_side_effects:
                    continue
                if not chains.uses_of(instr):
                    dead.append((block, instr))
        if not dead:
            break
        for block, instr in dead:
            block.remove(instr)
        changed_any = True
        func.invalidate_cfg()
    return changed_any
