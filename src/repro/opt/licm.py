"""Loop-invariant code motion.

Moves pure computations whose operands are loop-invariant into a loop
preheader.  Covers the paper's observation that the PRE phase "moves an
expression backward in the control flow graph, and thus loop-invariant
sign extensions can be moved out of the loop": a same-register
``r = extendN(r)`` whose register has no other definition in the loop is
hoisted, which is sound because the extension only canonicalizes the
upper bits (the low 32 bits are unchanged, and executing it early on the
zero-trip path merely refines the register).
"""

from __future__ import annotations

from ..analysis.liveness import Liveness
from ..analysis.loops import Loop, LoopForest
from ..ir.block import Block
from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Opcode
from .expr import PURE_OPS, is_idempotent_self_extend

_MAX_ROUNDS = 12


def hoist_loop_invariants(func: Function) -> bool:
    changed_any = False
    for _ in range(_MAX_ROUNDS):
        if not _one_round(func):
            break
        changed_any = True
    return changed_any


def _one_round(func: Function) -> bool:
    func.build_cfg()
    forest = LoopForest(func)
    if not forest.loops:
        return False
    liveness = Liveness(func)
    changed = False
    # Innermost first: len(body) ascending.
    for loop in sorted(forest.loops, key=lambda l: len(l.body)):
        changed |= _hoist_from_loop(func, loop, liveness)
        if changed:
            # Structures are stale after a hoist; restart the round.
            return True
    return changed


def _hoist_from_loop(func: Function, loop: Loop, liveness: Liveness) -> bool:
    defs_in_loop: dict[str, int] = {}
    for label in loop.body:
        for instr in func.block(label).instrs:
            if instr.dest is not None:
                name = instr.dest.name
                defs_in_loop[name] = defs_in_loop.get(name, 0) + 1

    candidates: list[tuple[Block, Instr]] = []
    for label in loop.body:
        block = func.block(label)
        for instr in block.instrs:
            if _is_hoistable(instr, loop, defs_in_loop, liveness):
                candidates.append((block, instr))
    if not candidates:
        return False

    preheader = _ensure_preheader(func, loop)
    if preheader is None:
        return False
    anchor = preheader.terminator
    for block, instr in candidates:
        block.remove(instr)
        preheader.insert_before(anchor, instr)
    func.invalidate_cfg()
    return True


def _is_hoistable(instr: Instr, loop: Loop, defs_in_loop: dict[str, int],
                  liveness: Liveness) -> bool:
    if instr.opcode not in PURE_OPS or instr.dest is None:
        return False
    self_extend = is_idempotent_self_extend(instr)
    for src in instr.srcs:
        inside = defs_in_loop.get(src.name, 0)
        if self_extend and src.name == instr.dest.name:
            inside -= 1  # the instruction's own definition
        if inside > 0:
            return False
    if defs_in_loop.get(instr.dest.name, 0) != 1:
        return False
    if self_extend:
        return True
    # The destination must be dead on loop entry, else hoisting would
    # clobber a value the loop (or a zero-trip exit) still reads.
    return not _live_into_header(loop, liveness, instr.dest.name)


def _live_into_header(loop: Loop, liveness: Liveness, reg_name: str) -> bool:
    bit = liveness.index_of.get(reg_name)
    if bit is None:
        return False
    return bool(liveness.live_in(loop.header.label) & (1 << bit))


def _ensure_preheader(func: Function, loop: Loop) -> Block | None:
    """The unique out-of-loop predecessor of the header, creating a
    dedicated preheader block when necessary."""
    header = loop.header
    outside = [p for p in header.preds if p.label not in loop.body]
    if not outside:
        return None
    if (len(outside) == 1 and len(outside[0].succs) == 1
            and outside[0].terminator.opcode is Opcode.JMP):
        return outside[0]

    preheader = func.new_block("preheader")
    preheader.append(Instr(Opcode.JMP, None, (), targets=(header.label,)))
    for pred in outside:
        terminator = pred.terminator
        terminator.targets = tuple(
            preheader.label if t == header.label else t
            for t in terminator.targets
        )
    func.invalidate_cfg()
    func.build_cfg()
    return preheader
