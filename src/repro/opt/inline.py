"""Function inlining.

The paper's JIT performs method inlining among its intermediate-level
optimizations [Ishizaki et al.; Suganuma et al.], and the sign-extension
results depend on it: a helper's parameter has an unknown range at its
array uses, but after inlining the argument's range and canonicality are
visible to AnalyzeARRAY.

Small, non-recursive callees are cloned into the caller: the call block
is split, arguments are copied into renamed parameter registers, and
returns become jumps to the continuation (storing into the call's
destination register).  Inlining runs on *converted* code, where every
value is canonical, so splicing bodies across the former ABI boundary
preserves the machine-level invariants.
"""

from __future__ import annotations

import itertools

from ..ir.block import Block
from ..ir.function import Function, Program
from ..ir.instruction import Instr, VReg
from ..ir.opcodes import Opcode

#: Callees with more instructions than this are not inlined.
MAX_CALLEE_INSTRS = 60
#: Callers are not grown beyond this many instructions.
MAX_CALLER_INSTRS = 900
#: Rounds of inlining (allows helper-of-helper chains).
MAX_ROUNDS = 2


def inline_small_functions(program: Program) -> bool:
    """Inline all eligible call sites.  Deterministic: the same program
    produces the same renamed registers and labels, which lets branch
    profiles collected on an inlined copy apply to another."""
    sites = itertools.count(1)
    changed_any = False
    for _ in range(MAX_ROUNDS):
        changed = False
        for func in program.functions.values():
            changed |= _inline_into(program, func, sites)
        if not changed:
            break
        changed_any = True
    return changed_any


def _is_inlinable(callee: Function, caller: Function) -> bool:
    if callee.name == caller.name:
        return False  # direct recursion
    size = sum(len(block.instrs) for block in callee.blocks)
    if size > MAX_CALLEE_INSTRS:
        return False
    for _, instr in callee.instructions():
        if instr.opcode is Opcode.CALL and instr.callee == callee.name:
            return False  # self-recursive
    return True


def _inline_into(program: Program, caller: Function, sites) -> bool:
    changed = False
    while True:
        site = _find_site(program, caller)
        if site is None:
            return changed
        block, position, instr = site
        _inline_at(program, caller, block, position, instr, next(sites))
        changed = True


def _find_site(program: Program, caller: Function):
    caller_size = sum(len(block.instrs) for block in caller.blocks)
    if caller_size > MAX_CALLER_INSTRS:
        return None
    for block in caller.blocks:
        for position, instr in enumerate(block.instrs):
            if instr.opcode is not Opcode.CALL:
                continue
            callee = program.functions.get(instr.callee)
            if callee is None or not _is_inlinable(callee, caller):
                continue
            return block, position, instr
    return None


def _inline_at(program: Program, caller: Function, block: Block,
               position: int, call: Instr, site: int) -> None:
    callee = program.functions[call.callee]
    prefix = f"inl{site}_"

    # Rename callee registers into the caller's namespace.
    reg_map: dict[str, VReg] = {}

    def mapped(reg: VReg) -> VReg:
        found = reg_map.get(reg.name)
        if found is None:
            found = caller.named_reg(f"{prefix}{reg.name}", reg.type)
            reg_map[reg.name] = found
        return found

    label_map = {b.label: f"{prefix}{b.label}" for b in callee.blocks}

    # Split the call block: [.. argument copies, jmp entry] + [cont ..].
    cont = Block(f"{prefix}cont")
    cont.instrs = block.instrs[position + 1:]
    block.instrs = block.instrs[:position]
    for param, arg in zip(callee.params, call.srcs):
        block.instrs.append(Instr(Opcode.MOV, mapped(param), (arg,),
                                  comment="inline arg"))
    block.instrs.append(
        Instr(Opcode.JMP, None, (),
              targets=(label_map[callee.entry.label],))
    )

    new_blocks: list[Block] = []
    for src_block in callee.blocks:
        clone = Block(label_map[src_block.label])
        for instr in src_block.instrs:
            if instr.opcode is Opcode.RET:
                if instr.srcs and call.dest is not None:
                    clone.append(Instr(Opcode.MOV, call.dest,
                                       (mapped(instr.srcs[0]),),
                                       comment="inline ret"))
                clone.append(Instr(Opcode.JMP, None, (),
                                   targets=(cont.label,)))
                continue
            copy = instr.copy()
            if copy.dest is not None:
                copy.dest = mapped(copy.dest)
            copy.srcs = tuple(mapped(s) for s in copy.srcs)
            copy.targets = tuple(label_map[t] for t in copy.targets)
            clone.append(copy)
        new_blocks.append(clone)

    # Insert the cloned body and continuation right after the call block.
    at = caller.blocks.index(block) + 1
    for offset, new_block in enumerate(new_blocks + [cont]):
        caller.blocks.insert(at + offset, new_block)
        caller._blocks_by_label[new_block.label] = new_block
    caller.invalidate_cfg()
