"""Algebraic simplification and branch folding.

* ``x + 0``, ``x - 0``, ``x * 1``, ``x & -1``, ``x | 0``, ``x ^ 0``,
  ``x << 0`` → ``mov x``; ``x * 0``, ``x & 0`` → ``const 0``.
* ``br`` on a constant condition → ``jmp``; unreachable blocks dropped.
"""

from __future__ import annotations

from ..analysis.ud_du import Chains
from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Opcode
from ..ir.types import ScalarType, low32, sign_extend

_NEUTRAL_RIGHT = {
    Opcode.ADD32: 0, Opcode.SUB32: 0, Opcode.MUL32: 1,
    Opcode.OR32: 0, Opcode.XOR32: 0, Opcode.AND32: -1,
    Opcode.SHL32: 0, Opcode.SHR32: 0, Opcode.USHR32: 0,
    Opcode.ADD64: 0, Opcode.SUB64: 0, Opcode.MUL64: 1,
    Opcode.OR64: 0, Opcode.XOR64: 0, Opcode.AND64: -1,
    Opcode.SHL64: 0, Opcode.SHR64: 0, Opcode.USHR64: 0,
}
_NEUTRAL_LEFT = {
    Opcode.ADD32: 0, Opcode.MUL32: 1, Opcode.OR32: 0, Opcode.XOR32: 0,
    Opcode.AND32: -1,
    Opcode.ADD64: 0, Opcode.MUL64: 1, Opcode.OR64: 0, Opcode.XOR64: 0,
    Opcode.AND64: -1,
}
_ZERO_RIGHT = {Opcode.MUL32: 0, Opcode.AND32: 0, Opcode.MUL64: 0,
               Opcode.AND64: 0}


def simplify(func: Function) -> bool:
    """Apply algebraic identities and fold constant branches."""
    changed = _algebraic(func)
    changed |= _fold_branches(func)
    if changed:
        func.invalidate_cfg()
        func.drop_unreachable_blocks()
    return changed


def _const_of(chains: Chains, instr: Instr, index: int) -> int | None:
    defs = chains.defs_for(instr, index)
    value: int | None = None
    for definition in defs:
        src = definition.instr
        if src is None or src.opcode is not Opcode.CONST:
            return None
        if not isinstance(src.imm, int):
            return None
        if value is None:
            value = src.imm
        elif value != src.imm:
            return None
    return value


def _norm(value: int, opcode: Opcode) -> int:
    bits = 64 if "64" in opcode.value else 32
    return sign_extend(value, bits)


def _algebraic(func: Function) -> bool:
    chains = Chains(func)
    changed = False
    for block in func.blocks:
        for position, instr in enumerate(block.instrs):
            opcode = instr.opcode
            if opcode not in _NEUTRAL_RIGHT or len(instr.srcs) != 2:
                continue
            rhs = _const_of(chains, instr, 1)
            lhs = _const_of(chains, instr, 0)

            replacement: Instr | None = None
            if rhs is not None and opcode in _ZERO_RIGHT \
                    and _norm(rhs, opcode) == _ZERO_RIGHT[opcode]:
                zero_type = (ScalarType.I64 if "64" in opcode.value
                             else ScalarType.I32)
                replacement = Instr(Opcode.CONST, instr.dest, imm=0,
                                    elem=zero_type, comment="simplified")
            elif rhs is not None and _norm(rhs, opcode) == _NEUTRAL_RIGHT[opcode]:
                replacement = Instr(Opcode.MOV, instr.dest, (instr.srcs[0],),
                                    comment="simplified")
            elif (lhs is not None and opcode in _NEUTRAL_LEFT
                  and _norm(lhs, opcode) == _NEUTRAL_LEFT[opcode]):
                replacement = Instr(Opcode.MOV, instr.dest, (instr.srcs[1],),
                                    comment="simplified")

            if replacement is not None:
                block.instrs[position] = replacement
                changed = True
    return changed


def _fold_branches(func: Function) -> bool:
    chains = Chains(func)
    changed = False
    for block in func.blocks:
        terminator = block.instrs[-1] if block.instrs else None
        if terminator is None or terminator.opcode is not Opcode.BR:
            continue
        value = _const_of(chains, terminator, 0)
        if value is None:
            continue
        taken = low32(value) != 0
        target = terminator.targets[0] if taken else terminator.targets[1]
        block.instrs[-1] = Instr(Opcode.JMP, None, (), targets=(target,),
                                 comment="folded branch")
        changed = True
    if changed:
        func.invalidate_cfg()
    return changed
