"""Busy code motion: classic PRE with earliest down-safe placement.

The paper's step 2 "employ[s] a variant of the partial redundancy
elimination algorithm [12, 13, 14] for common sub-expression
elimination".  The default pipeline uses the GCSE + LICM combination
(equivalent power on these workloads, simpler to reason about); this
module provides the textbook alternative — Knoop/Rüthing/Steffen-style
code motion with *earliest* (busy) placement — for study and for the
``benchmarks/test_ablation_pre.py`` comparison.

Formulation (bit vectors over lexical expressions):

* ``ANTIN/ANTOUT`` — down-safety (backward, intersect): the expression
  is computed on every path before its operands change.
* ``AVIN/AVOUT`` — availability (forward, intersect).
* ``EARLIEST(i, j) = ANTIN(j) & ~AVOUT(i) & (~TRANSP(i) | ~ANTOUT(i))``
  — the first down-safe edges where the value is not already available.

Insertion splits each earliest edge and computes the expression into a
fresh temporary there; full-redundancy cleanup (GCSE + copy propagation
+ DCE) then rewrites the now-available original computations.  Because
every insertion point is down-safe, no computation is speculated and no
path executes more evaluations than before.
"""

from __future__ import annotations

from ..ir.block import Block
from ..ir.builder import _BIN_RESULT, _UN_RESULT
from ..ir.function import Function
from ..ir.instruction import Instr, VReg
from ..ir.opcodes import Opcode
from ..ir.types import ScalarType
from .expr import ExprKey, expr_key, is_idempotent_self_extend
from .dce import eliminate_dead_code
from .copy_prop import propagate_copies
from .gcse import eliminate_common_subexpressions


def busy_code_motion(func: Function) -> bool:
    """Run one round of BCM-style PRE; returns True when code changed."""
    func.build_cfg()
    universe: dict[ExprKey, int] = {}
    exemplar: dict[ExprKey, Instr] = {}
    for _, instr in func.instructions():
        key = expr_key(instr)
        if key is not None and key not in universe:
            universe[key] = len(universe)
            exemplar[key] = instr
    if not universe:
        return False
    n_exprs = len(universe)
    full = (1 << n_exprs) - 1
    exprs_using: dict[str, int] = {}
    for key, bit in universe.items():
        for name in key.srcs:
            exprs_using[name] = exprs_using.get(name, 0) | (1 << bit)

    transp: dict[str, int] = {}
    antloc: dict[str, int] = {}
    comp: dict[str, int] = {}
    for block in func.blocks:
        killed = 0  # expressions whose operands were defined so far
        local_antloc = 0
        available = 0
        for instr in block.instrs:
            key = expr_key(instr)
            if key is not None:
                bit = 1 << universe[key]
                if not killed & bit:
                    local_antloc |= bit
                available |= bit
            if instr.dest is not None:
                mask = exprs_using.get(instr.dest.name, 0)
                if is_idempotent_self_extend(instr) and key in universe:
                    mask &= ~(1 << universe[key])
                killed |= mask
                available &= ~mask
                if key is not None and _still_available(instr, key):
                    available |= 1 << universe[key]
        transp[block.label] = full & ~killed
        antloc[block.label] = local_antloc
        comp[block.label] = available

    antin, antout = _solve_backward_intersect(func, transp, antloc, full)
    avin, avout = _solve_forward_intersect(func, transp, comp, full)
    del antin, avin

    insertions: list[tuple[Block, Block, int]] = []
    for block in func.blocks:
        for succ in block.succs:
            earliest = (
                _antin_of(succ, transp, antloc, antout)
                & ~avout[block.label]
                & (~transp[block.label] | ~antout[block.label])
                & full
            )
            if earliest:
                insertions.append((block, succ, earliest))

    # Virtual entry edge: expressions down-safe at function entry are
    # earliest right there (nothing is available on entry).
    entry_bits = (_antin_of(func.entry, transp, antloc, antout)
                  & ~antloc[func.entry.label] & full)

    key_by_bit = {bit: key for key, bit in universe.items()}

    if entry_bits:
        position = 0
        index = 0
        remaining = entry_bits
        while remaining:
            if remaining & 1:
                key = key_by_bit[index]
                temp = func.new_reg(_result_type(key), "pre")
                computed = exemplar[key].copy()
                computed.dest = temp
                func.entry.instrs.insert(position, computed)
                position += 1
            remaining >>= 1
            index += 1
    for pred, succ, bits in insertions:
        split = func.new_block("pre")
        index = 0
        remaining = bits
        while remaining:
            if remaining & 1:
                key = key_by_bit[index]
                temp = func.new_reg(_result_type(key), "pre")
                computed = exemplar[key].copy()
                computed.dest = temp
                split.append(computed)
            remaining >>= 1
            index += 1
        split.append(Instr(Opcode.JMP, None, (), targets=(succ.label,)))
        terminator = pred.terminator
        # Retarget only one occurrence: BR may name the same successor
        # twice, and each edge was considered separately.
        new_targets = list(terminator.targets)
        new_targets[new_targets.index(succ.label)] = split.label
        terminator.targets = tuple(new_targets)
    func.invalidate_cfg()

    # Full-redundancy cleanup makes the inserted values flow into the
    # original computations (and handles plain CSE when nothing was
    # inserted at all).
    changed = bool(insertions) or bool(entry_bits)
    changed |= eliminate_common_subexpressions(func)
    changed |= propagate_copies(func)
    changed |= eliminate_dead_code(func)
    func.drop_unreachable_blocks()
    return changed


def _still_available(instr: Instr, key: ExprKey) -> bool:
    if instr.dest is None or instr.dest.name not in key.srcs:
        return True
    return is_idempotent_self_extend(instr)


def _antin_of(block: Block, transp, antloc, antout) -> int:
    return antloc[block.label] | (transp[block.label] & antout[block.label])


def _solve_backward_intersect(func, transp, antloc, full):
    antout = {b.label: full for b in func.blocks}
    antin = {b.label: full for b in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            if block.succs:
                out = full
                for succ in block.succs:
                    out &= antin[succ.label]
            else:
                out = 0
            new_in = antloc[block.label] | (transp[block.label] & out)
            if out != antout[block.label] or new_in != antin[block.label]:
                antout[block.label] = out
                antin[block.label] = new_in
                changed = True
    return antin, antout


def _solve_forward_intersect(func, transp, comp, full):
    avin = {b.label: full for b in func.blocks}
    avout = {b.label: full for b in func.blocks}
    avin[func.entry.label] = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            if block is func.entry:
                inp = 0
            elif block.preds:
                inp = full
                for pred in block.preds:
                    inp &= avout[pred.label]
            else:
                inp = 0
            new_out = comp[block.label] | (transp[block.label] & inp)
            if inp != avin[block.label] or new_out != avout[block.label]:
                avin[block.label] = inp
                avout[block.label] = new_out
                changed = True
    return avin, avout


def _result_type(key: ExprKey) -> ScalarType:
    if key.opcode in _BIN_RESULT:
        return _BIN_RESULT[key.opcode]
    if key.opcode in _UN_RESULT:
        return _UN_RESULT[key.opcode]
    if key.opcode in (Opcode.CMP32, Opcode.CMP64, Opcode.CMPF):
        return ScalarType.I32
    return ScalarType.I64
