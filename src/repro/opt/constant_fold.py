"""Constant folding and propagation.

"When a constant is propagated as the source operand of a sign
extension, the sign extension will be changed to a copy instruction by
constant folding." (Section 2, step 2.)  We go one step further and fold
``extend(const)`` directly to a constant.

The pass uses UD chains: an operand is constant when *every* reaching
definition is a ``CONST`` with the same value.  Folding iterates to a
(bounded) fixpoint because folding one instruction can make another's
operand constant.
"""

from __future__ import annotations

import math

from ..analysis.ud_du import Chains
from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Cond, Opcode
from ..ir.types import ScalarType, low32, sign_extend, wrap_u64

_MAX_ROUNDS = 10


def fold_constants(func: Function) -> bool:
    """Fold constant computations; returns True when anything changed."""
    changed_any = False
    for _ in range(_MAX_ROUNDS):
        chains = Chains(func)
        changed = False
        for block in func.blocks:
            for position, instr in enumerate(list(block.instrs)):
                folded = _try_fold(chains, instr)
                if folded is not None:
                    block.instrs[block.instrs.index(instr)] = folded
                    changed = True
        if changed:
            changed_any = True
            func.invalidate_cfg()
        else:
            break
    return changed_any


def _const_operand(chains: Chains, instr: Instr, index: int):
    """The unique constant (int or float) reaching an operand, or None."""
    defs = chains.defs_for(instr, index)
    if not defs:
        return None
    value = None
    for definition in defs:
        src = definition.instr
        if src is None or src.opcode is not Opcode.CONST:
            return None
        if value is None:
            value = src.imm
        elif value != src.imm:
            return None
    return value


def _const_instr(instr: Instr, value: int | float,
                 type_: ScalarType) -> Instr:
    return Instr(Opcode.CONST, instr.dest, imm=value, elem=type_,
                 comment="folded")


def _try_fold(chains: Chains, instr: Instr) -> Instr | None:
    opcode = instr.opcode
    if instr.dest is None:
        return None

    operands = []
    for index in range(len(instr.srcs)):
        operands.append(_const_operand(chains, instr, index))

    if opcode in _INT32_FOLD and all(isinstance(v, int) for v in operands):
        try:
            result = _INT32_FOLD[opcode](*[sign_extend(v, 32) for v in operands])
        except ZeroDivisionError:
            return None  # keep the trapping instruction
        return _const_instr(instr, sign_extend(low32(result), 32), ScalarType.I32)

    if opcode in _INT64_FOLD and all(isinstance(v, int) for v in operands):
        try:
            result = _INT64_FOLD[opcode](*[sign_extend(v, 64) for v in operands])
        except ZeroDivisionError:
            return None
        return _const_instr(instr, sign_extend(wrap_u64(result), 64),
                            ScalarType.I64)

    if opcode in _EXT_FOLD and isinstance(operands[0], int):
        bits = _EXT_FOLD[opcode]
        return _const_instr(instr, sign_extend(operands[0], bits),
                            ScalarType.I32)
    if opcode in _ZEXT_FOLD and isinstance(operands[0], int):
        bits = _ZEXT_FOLD[opcode]
        result_type = ScalarType.I64 if opcode is Opcode.ZEXT32 else ScalarType.I32
        return _const_instr(instr, operands[0] & ((1 << bits) - 1), result_type)

    if opcode is Opcode.CMP32 and all(isinstance(v, int) for v in operands):
        if instr.cond.is_unsigned:
            a, b = low32(operands[0]), low32(operands[1])
        else:
            a, b = sign_extend(operands[0], 32), sign_extend(operands[1], 32)
        return _const_instr(instr, int(_eval_cond(a, b, instr.cond)),
                            ScalarType.I32)

    if opcode in _FLOAT_FOLD and all(isinstance(v, (int, float)) for v in operands) \
            and operands and all(v is not None for v in operands):
        float_srcs = all(s.type is ScalarType.F64 for s in instr.srcs)
        if float_srcs:
            try:
                result = _FLOAT_FOLD[opcode](*[float(v) for v in operands])
            except (ValueError, OverflowError, ZeroDivisionError):
                return None
            return _const_instr(instr, result, ScalarType.F64)

    if opcode is Opcode.MOV and operands[0] is not None:
        src_type = instr.srcs[0].type
        if src_type is ScalarType.F64:
            return _const_instr(instr, float(operands[0]), ScalarType.F64)
        if src_type is ScalarType.I64:
            return _const_instr(instr, sign_extend(int(operands[0]), 64),
                                ScalarType.I64)
        if src_type.is_narrow_int:
            return _const_instr(instr, sign_extend(int(operands[0]), 32),
                                ScalarType.I32)
    return None


def _eval_cond(a, b, cond: Cond) -> bool:
    if cond is Cond.EQ:
        return a == b
    if cond is Cond.NE:
        return a != b
    if cond in (Cond.LT, Cond.ULT):
        return a < b
    if cond in (Cond.LE, Cond.ULE):
        return a <= b
    if cond in (Cond.GT, Cond.UGT):
        return a > b
    return a >= b


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _trunc_rem(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError
    remainder = abs(a) % abs(b)
    return -remainder if a < 0 else remainder


_INT32_FOLD = {
    Opcode.ADD32: lambda a, b: a + b,
    Opcode.SUB32: lambda a, b: a - b,
    Opcode.MUL32: lambda a, b: a * b,
    Opcode.DIV32: _trunc_div,
    Opcode.REM32: _trunc_rem,
    Opcode.NEG32: lambda a: -a,
    Opcode.AND32: lambda a, b: a & b,
    Opcode.OR32: lambda a, b: a | b,
    Opcode.XOR32: lambda a, b: a ^ b,
    Opcode.NOT32: lambda a: ~a,
    Opcode.SHL32: lambda a, b: a << (b & 31),
    Opcode.SHR32: lambda a, b: a >> (b & 31),
    Opcode.USHR32: lambda a, b: low32(a) >> (b & 31),
}

_INT64_FOLD = {
    Opcode.ADD64: lambda a, b: a + b,
    Opcode.SUB64: lambda a, b: a - b,
    Opcode.MUL64: lambda a, b: a * b,
    Opcode.DIV64: _trunc_div,
    Opcode.REM64: _trunc_rem,
    Opcode.NEG64: lambda a: -a,
    Opcode.AND64: lambda a, b: a & b,
    Opcode.OR64: lambda a, b: a | b,
    Opcode.XOR64: lambda a, b: a ^ b,
    Opcode.NOT64: lambda a: ~a,
    Opcode.SHL64: lambda a, b: a << (b & 63),
    Opcode.SHR64: lambda a, b: a >> (b & 63),
    Opcode.USHR64: lambda a, b: wrap_u64(a) >> (b & 63),
}

_EXT_FOLD = {Opcode.EXTEND8: 8, Opcode.EXTEND16: 16, Opcode.EXTEND32: 32,
             Opcode.TRUNC32: 32}
_ZEXT_FOLD = {Opcode.ZEXT8: 8, Opcode.ZEXT16: 16, Opcode.ZEXT32: 32}

_FLOAT_FOLD = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FNEG: lambda a: -a,
    Opcode.FABS: abs,
    Opcode.FFLOOR: lambda a: float(math.floor(a)),
}
