"""General optimizations (Figure 5, step 2): constant folding, copy
propagation, dead code elimination, algebraic simplification, global
CSE, and loop-invariant code motion (the PRE variant)."""

from .bcm import busy_code_motion
from .constant_fold import fold_constants
from .copy_prop import propagate_copies
from .dce import eliminate_dead_code
from .expr import (
    ExprKey,
    PURE_OPS,
    expr_key,
    is_idempotent_self_extend,
    kills_expr,
)
from .gcse import eliminate_common_subexpressions
from .inline import inline_small_functions
from .licm import hoist_loop_invariants
from .pass_manager import (
    BUCKET_CHAINS,
    BUCKET_OTHERS,
    BUCKET_SIGN_EXT,
    Pass,
    PassManager,
    Timing,
)
from .simplify import simplify

__all__ = [
    "BUCKET_CHAINS",
    "BUCKET_OTHERS",
    "BUCKET_SIGN_EXT",
    "ExprKey",
    "PURE_OPS",
    "Pass",
    "PassManager",
    "Timing",
    "busy_code_motion",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "expr_key",
    "fold_constants",
    "hoist_loop_invariants",
    "inline_small_functions",
    "is_idempotent_self_extend",
    "kills_expr",
    "propagate_copies",
    "simplify",
]
