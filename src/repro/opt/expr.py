"""Expression keys for CSE/code motion.

An expression is the lexical shape of a pure computation: opcode,
condition, element kind, immediate, and source register *names*.  Two
instructions with equal keys compute the same value whenever their
source registers hold the same values — the classic non-SSA CSE notion,
made safe by kill-tracking on register redefinition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instruction import Instr
from ..ir.opcodes import Opcode

#: Pure, rematerializable opcodes eligible for CSE and code motion.
PURE_OPS = frozenset(
    {
        Opcode.ADD32, Opcode.SUB32, Opcode.MUL32, Opcode.NEG32,
        Opcode.AND32, Opcode.OR32, Opcode.XOR32, Opcode.NOT32,
        Opcode.SHL32, Opcode.SHR32, Opcode.USHR32,
        Opcode.ADD64, Opcode.SUB64, Opcode.MUL64, Opcode.NEG64,
        Opcode.AND64, Opcode.OR64, Opcode.XOR64, Opcode.NOT64,
        Opcode.SHL64, Opcode.SHR64, Opcode.USHR64,
        Opcode.CMP32, Opcode.CMP64, Opcode.CMPF,
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FNEG,
        Opcode.FABS, Opcode.FFLOOR,
        Opcode.EXTEND8, Opcode.EXTEND16, Opcode.EXTEND32,
        Opcode.ZEXT8, Opcode.ZEXT16, Opcode.ZEXT32, Opcode.TRUNC32,
        Opcode.I2D, Opcode.L2D, Opcode.D2I, Opcode.D2L,
    }
)
# Deliberately excluded: DIV/REM (can trap), FSQRT/FSIN/... (keep code
# motion focused), loads (not pure), CONST (rematerialized by folding).

#: Pure but trapping or expensive ops: CSE-able where available, but not
#: speculated by loop-invariant code motion.
NO_SPECULATE = frozenset(
    {Opcode.DIV32, Opcode.REM32, Opcode.DIV64, Opcode.REM64}
)


@dataclass(frozen=True)
class ExprKey:
    opcode: Opcode
    cond: object
    elem: object
    imm: object
    srcs: tuple[str, ...]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<expr {self.opcode.value} {','.join(self.srcs)}>"


def expr_key(instr: Instr) -> ExprKey | None:
    """The expression key of an instruction, or None if not eligible."""
    if instr.opcode not in PURE_OPS or instr.dest is None:
        return None
    srcs = tuple(s.name for s in instr.srcs)
    if instr.info.commutative:
        srcs = tuple(sorted(srcs))
    return ExprKey(instr.opcode, instr.cond, instr.elem, instr.imm, srcs)


def is_idempotent_self_extend(instr: Instr) -> bool:
    """``r = extendN(r)``: recomputing it does not change the value, so
    the instruction's own definition of ``r`` does not kill the
    expression ``extendN(r)``.  This is what lets code motion hoist
    loop-invariant sign extensions (the paper's Figure 5 step 2)."""
    return (
        instr.is_extend
        and instr.dest is not None
        and len(instr.srcs) == 1
        and instr.dest.name == instr.srcs[0].name
    )


def kills_expr(instr: Instr, key: ExprKey) -> bool:
    """Does ``instr`` invalidate the cached value of ``key``?"""
    if instr.dest is None:
        return False
    if instr.dest.name not in key.srcs:
        return False
    if is_idempotent_self_extend(instr) and expr_key(instr) == key:
        return False
    return True
