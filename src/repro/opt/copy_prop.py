"""Copy propagation.

A use of ``r`` whose every reaching definition is the same ``r = mov s``
can read ``s`` directly, provided ``s`` still holds the value it had at
the copy.  We establish that cheaply and safely by requiring ``s`` to
have exactly one definition in the function (the common case for the
expression temporaries the frontend emits); its value is then fixed for
the whole execution after definition.
"""

from __future__ import annotations

from ..analysis.ud_du import Chains
from ..ir.function import Function
from ..ir.opcodes import Opcode

_MAX_ROUNDS = 10


def propagate_copies(func: Function) -> bool:
    changed_any = False
    for _ in range(_MAX_ROUNDS):
        chains = Chains(func)
        def_counts: dict[str, int] = {}
        for param in func.params:
            def_counts[param.name] = def_counts.get(param.name, 0) + 1
        for _, instr in func.instructions():
            if instr.dest is not None:
                def_counts[instr.dest.name] = def_counts.get(instr.dest.name, 0) + 1

        changed = False
        for _, instr in func.instructions():
            for index, src in enumerate(instr.srcs):
                defs = chains.defs_for(instr, index)
                if len(defs) != 1 or defs[0].instr is None:
                    continue
                definition = defs[0].instr
                if definition is instr:
                    continue
                if definition.opcode is not Opcode.MOV:
                    continue
                copied = definition.srcs[0]
                if copied.name == src.name:
                    continue
                if copied.type is not src.type:
                    continue
                if def_counts.get(copied.name, 0) != 1:
                    continue
                srcs = list(instr.srcs)
                srcs[index] = copied
                instr.srcs = tuple(srcs)
                changed = True
        if changed:
            changed_any = True
        else:
            break
    return changed_any
