"""Pass pipeline with per-bucket timing (for the paper's Table 3).

The paper buckets JIT compilation time into "sign extension
optimizations", "UD/DU chain creation", and "others"; passes here
declare their bucket so the harness can reproduce that breakdown.

When a :class:`~repro.telemetry.tracer.Tracer` is attached, every pass
execution additionally becomes one span in the pipeline trace.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..ir.function import Function

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..telemetry.tracer import Tracer

PassFn = Callable[[Function], bool]

BUCKET_SIGN_EXT = "sign extension optimizations"
BUCKET_CHAINS = "UD/DU chain creation"
BUCKET_OTHERS = "others"

#: Short machine-friendly key per bucket, shared by the harness JSON
#: export and the telemetry export (one source of truth for the
#: bucket -> key mapping).
BUCKET_KEYS = {
    BUCKET_SIGN_EXT: "sign_ext",
    BUCKET_CHAINS: "chains",
    BUCKET_OTHERS: "others",
}


@dataclass
class Pass:
    name: str
    run: PassFn
    bucket: str = BUCKET_OTHERS


@dataclass
class Timing:
    """Accumulated wall-clock seconds per bucket."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, bucket: str, elapsed: float) -> None:
        self.seconds[bucket] = self.seconds.get(bucket, 0.0) + elapsed

    def merge(self, other: "Timing") -> None:
        for bucket, elapsed in other.seconds.items():
            self.add(bucket, elapsed)

    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, bucket: str) -> float:
        total = self.total()
        if total == 0.0:
            return 0.0
        return self.seconds.get(bucket, 0.0) / total

    def as_dict(self) -> dict[str, float]:
        """Seconds per bucket under the short keys, plus the total.

        The single rendering used by the harness JSON export, Table 3
        code, and the telemetry export.
        """
        out = {
            key: self.seconds.get(bucket, 0.0)
            for bucket, key in BUCKET_KEYS.items()
        }
        out["total"] = self.total()
        return out


class PassManager:
    """Runs a fixed pipeline over one function, recording timing."""

    def __init__(self, passes: list[Pass], timing: Timing | None = None,
                 tracer: "Tracer | None" = None) -> None:
        self.passes = passes
        self.timing = timing if timing is not None else Timing()
        self.tracer = tracer

    def run(self, func: Function) -> bool:
        changed = False
        for pass_ in self.passes:
            start = time.perf_counter()
            if self.tracer is not None:
                with self.tracer.span(pass_.name, category="pass",
                                      function=func.name) as span:
                    result = bool(pass_.run(func))
                    span.annotate(changed=result)
            else:
                result = bool(pass_.run(func))
            changed |= result
            self.timing.add(pass_.bucket, time.perf_counter() - start)
        return changed

    def run_to_fixpoint(self, func: Function, max_rounds: int = 4) -> None:
        for _ in range(max_rounds):
            if not self.run(func):
                break
