"""Pass pipeline with per-bucket timing (for the paper's Table 3).

The paper buckets JIT compilation time into "sign extension
optimizations", "UD/DU chain creation", and "others"; passes here
declare their bucket so the harness can reproduce that breakdown.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from ..ir.function import Function

PassFn = Callable[[Function], bool]

BUCKET_SIGN_EXT = "sign extension optimizations"
BUCKET_CHAINS = "UD/DU chain creation"
BUCKET_OTHERS = "others"


@dataclass
class Pass:
    name: str
    run: PassFn
    bucket: str = BUCKET_OTHERS


@dataclass
class Timing:
    """Accumulated wall-clock seconds per bucket."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, bucket: str, elapsed: float) -> None:
        self.seconds[bucket] = self.seconds.get(bucket, 0.0) + elapsed

    def merge(self, other: "Timing") -> None:
        for bucket, elapsed in other.seconds.items():
            self.add(bucket, elapsed)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, bucket: str) -> float:
        total = self.total
        if total == 0.0:
            return 0.0
        return self.seconds.get(bucket, 0.0) / total


class PassManager:
    """Runs a fixed pipeline over one function, recording timing."""

    def __init__(self, passes: list[Pass], timing: Timing | None = None) -> None:
        self.passes = passes
        self.timing = timing if timing is not None else Timing()

    def run(self, func: Function) -> bool:
        changed = False
        for pass_ in self.passes:
            start = time.perf_counter()
            changed |= bool(pass_.run(func))
            self.timing.add(pass_.bucket, time.perf_counter() - start)
        return changed

    def run_to_fixpoint(self, func: Function, max_rounds: int = 4) -> None:
        for _ in range(max_rounds):
            if not self.run(func):
                break
