"""Global common-subexpression elimination over available expressions.

Together with :mod:`repro.opt.licm` this forms the repo's "variant of
the partial redundancy elimination algorithm ... for common
sub-expression elimination" (Figure 5, step 2): fully redundant
computations are removed here; partially redundant loop-invariant ones
(including sign extensions, thanks to the idempotent-self-extend kill
exemption) are moved out of loops by LICM.
"""

from __future__ import annotations

from ..analysis.dataflow import DataflowProblem, Direction, Meet
from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Opcode
from .expr import ExprKey, expr_key, is_idempotent_self_extend, kills_expr


def eliminate_common_subexpressions(func: Function) -> bool:
    func.build_cfg()
    universe: dict[ExprKey, int] = {}
    for _, instr in func.instructions():
        key = expr_key(instr)
        if key is not None and key not in universe:
            universe[key] = len(universe)
    if not universe:
        return False
    keys = list(universe)
    exprs_using: dict[str, int] = {}
    for key, bit in universe.items():
        for name in key.srcs:
            exprs_using[name] = exprs_using.get(name, 0) | (1 << bit)

    problem = DataflowProblem(
        func, Direction.FORWARD, Meet.INTERSECT, len(universe), boundary=0
    )
    for block in func.blocks:
        facts = problem.facts_for(block)
        available = 0  # locally generated, relative to block start
        killed = 0
        for instr in block.instrs:
            key = expr_key(instr)
            if instr.dest is not None:
                mask = exprs_using.get(instr.dest.name, 0)
                if is_idempotent_self_extend(instr) and key in universe:
                    mask &= ~(1 << universe[key])
                available &= ~mask
                killed |= mask
            if key is not None and _generates(instr, key):
                bit = 1 << universe[key]
                available |= bit
                killed &= ~bit
        facts.gen = available
        facts.kill = killed
    problem.solve()

    redundant: list[tuple[object, Instr]] = []
    redundant_keys: set[ExprKey] = set()
    for block in func.blocks:
        available = problem.facts_for(block).in_
        for instr in block.instrs:
            key = expr_key(instr)
            if key is not None and (available >> universe[key]) & 1:
                redundant.append((block, instr))
                redundant_keys.add(key)
            if instr.dest is not None:
                mask = exprs_using.get(instr.dest.name, 0)
                if is_idempotent_self_extend(instr) and key in universe:
                    mask &= ~(1 << universe[key])
                available &= ~mask
            if key is not None and _generates(instr, key):
                available |= 1 << universe[key]

    if not redundant:
        return False

    temps = {
        key: func.new_reg(_result_type(key), "cse")
        for key in redundant_keys
    }
    redundant_uids = {instr.uid for _, instr in redundant}

    for block in func.blocks:
        rewritten: list[Instr] = []
        for instr in block.instrs:
            key = expr_key(instr)
            if key in redundant_keys:
                temp = temps[key]
                if instr.uid in redundant_uids:
                    rewritten.append(Instr(Opcode.MOV, instr.dest, (temp,),
                                           comment="cse reuse"))
                else:
                    generator = instr.copy()
                    generator.dest = temp
                    rewritten.append(generator)
                    rewritten.append(Instr(Opcode.MOV, instr.dest, (temp,),
                                           comment="cse save"))
            else:
                rewritten.append(instr)
        block.instrs = rewritten
    func.invalidate_cfg()
    return True


def _generates(instr: Instr, key: ExprKey) -> bool:
    """Does computing ``instr`` leave ``key`` available afterwards?

    Not if the destination is one of the expression's own operands
    (``v = fadd v, x`` changes ``v``, so "fadd v, x" now denotes a
    different value) — except for idempotent self-extensions.
    """
    if instr.dest is None:
        return True
    if instr.dest.name not in key.srcs:
        return True
    return is_idempotent_self_extend(instr)


def _result_type(key: ExprKey):
    from ..ir.builder import _BIN_RESULT, _UN_RESULT
    from ..ir.types import ScalarType

    if key.opcode in _BIN_RESULT:
        return _BIN_RESULT[key.opcode]
    if key.opcode in _UN_RESULT:
        return _UN_RESULT[key.opcode]
    if key.opcode in (Opcode.CMP32, Opcode.CMP64, Opcode.CMPF):
        return ScalarType.I32
    return ScalarType.I64
