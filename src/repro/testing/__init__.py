"""Fuzzing utilities: random program generation for soundness testing."""

from .genprog import ProgramGenerator, generate_program

__all__ = ["ProgramGenerator", "generate_program"]
