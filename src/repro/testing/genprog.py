"""Random J32 program generation for soundness fuzzing.

Generates structurally valid, trap-free, deterministic programs that
stress the sign-extension machinery: values that overflow 32 bits,
count-down and count-up array loops, narrowing casts, mixed
int/long/double arithmetic.  Property tests compile each generated
program under every variant and require identical observable behaviour
— the repository's strongest soundness check.
"""

from __future__ import annotations

import random

_INT_VARS = ["a", "b", "c", "d"]
_SEED_CONSTANTS = [
    0, 1, -1, 7, 255, -128, 65535, 0x7fffffff, -2147483648, 123456789,
    -99999, 0x0fffffff,
]


class ProgramGenerator:
    """Emits one random J32 program per seed."""

    def __init__(self, seed: int, *, max_loops: int = 2,
                 max_statements: int = 8) -> None:
        self.rng = random.Random(seed)
        self.max_loops = max_loops
        self.max_statements = max_statements
        self.array_len = self.rng.choice([8, 16, 32])
        self._loop_depth = 0
        self.has_helper = False
        self.has_global = False

    # -- expressions -------------------------------------------------------

    def int_expr(self, depth: int = 0) -> str:
        rng = self.rng
        if depth >= 3 or rng.random() < 0.35:
            if rng.random() < 0.5:
                return rng.choice(_INT_VARS)
            return str(rng.choice(_SEED_CONSTANTS))
        kind = rng.randrange(9)
        lhs = self.int_expr(depth + 1)
        rhs = self.int_expr(depth + 1)
        if kind == 0:
            return f"({lhs} + {rhs})"
        if kind == 1:
            return f"({lhs} - {rhs})"
        if kind == 2:
            return f"({lhs} * {rhs})"
        if kind == 3:
            return f"({lhs} & {rhs})"
        if kind == 4:
            return f"({lhs} | {rhs})"
        if kind == 5:
            return f"({lhs} ^ {rhs})"
        if kind == 6:
            amount = rng.randrange(32)
            op = rng.choice(["<<", ">>", ">>>"])
            return f"({lhs} {op} {amount})"
        if kind == 7:
            # Trap-free division: non-zero divisor via | 1.
            op = rng.choice(["/", "%"])
            return f"({lhs} {op} ({rhs} | 1))"
        narrow = rng.choice(["byte", "short", "char"])
        return f"(int)(({narrow}) {lhs})" if narrow == "char" \
            else f"(({narrow}) {lhs})"

    def index_expr(self) -> str:
        """An in-bounds array index (masked to the power-of-two length)."""
        rng = self.rng
        if rng.random() < 0.25:
            # >>> on a guaranteed-negative value: the unsigned shift
            # zero-fills from bit 31, so the subscript is only correct
            # if the shift really consumed a canonical register.
            var = rng.choice(_INT_VARS)
            amount = rng.randrange(1, 31)
            return (f"((({var} | -2147483648) >>> {amount}) "
                    f"& {self.array_len - 1})")
        return f"(({self.int_expr(2)}) & {self.array_len - 1})"

    def condition(self) -> str:
        rng = self.rng
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"{rng.choice(_INT_VARS)} {op} {self.int_expr(2)}"

    # -- statements --------------------------------------------------------

    def statement(self, depth: int = 0) -> list[str]:
        rng = self.rng
        kind = rng.randrange(10)
        pad = "    " * (depth + 1)
        if kind < 4:
            var = rng.choice(_INT_VARS)
            op = rng.choice(["=", "+=", "-=", "^=", "&=", "|="])
            return [f"{pad}{var} {op} {self.int_expr()};"]
        if kind == 4:
            return [f"{pad}arr[{self.index_expr()}] = {self.int_expr(1)};"]
        if kind == 5:
            var = rng.choice(_INT_VARS)
            return [f"{pad}{var} += arr[{self.index_expr()}];"]
        if kind == 6 and depth < 2:
            body = self.statement(depth + 1)
            other = self.statement(depth + 1)
            return ([f"{pad}if ({self.condition()}) {{"] + body
                    + [f"{pad}}} else {{"] + other + [f"{pad}}}"])
        if kind == 7 and self._loop_depth < self.max_loops and depth < 2:
            self._loop_depth += 1
            shape = rng.randrange(5)
            mask = self.array_len - 1
            # Shape 4 counts down over a *long* induction variable that
            # is narrowed to an int subscript; the others use int.
            loop_var = (f"j{self._loop_depth}" if shape == 4
                        else f"i{self._loop_depth}")
            trips = rng.randrange(2, 9)
            body = []
            for _ in range(rng.randrange(1, 3)):
                body.extend(self.statement(depth + 1))
            use = rng.choice(_INT_VARS)
            inner = "    " * (depth + 2)
            narrowed = f"(int) {loop_var}" if shape == 4 else loop_var
            body.append(f"{inner}{use} += "
                        f"arr[({narrowed} + {rng.randrange(8)}) & {mask}];")
            if shape in (1, 3, 4):
                # Array store inside a count-down loop, indexed by the
                # downward induction variable (AnalyzeARRAY Theorem 3/4).
                body.append(f"{inner}arr[({narrowed} + {rng.randrange(4)}) "
                            f"& {mask}] = {self.int_expr(2)};")
            self._loop_depth -= 1
            if shape == 0:  # count-up for
                head = (f"{pad}for (int {loop_var} = 0; {loop_var} < {trips}; "
                        f"{loop_var}++) {{")
                return [head] + body + [f"{pad}}}"]
            if shape == 1:  # count-down for
                head = (f"{pad}for (int {loop_var} = {trips}; {loop_var} > 0; "
                        f"{loop_var}--) {{")
                return [head] + body + [f"{pad}}}"]
            if shape == 4:  # count-down for over a long induction variable
                head = (f"{pad}for (long {loop_var} = {trips}L; "
                        f"{loop_var} > 0L; {loop_var}--) {{")
                return [head] + body + [f"{pad}}}"]
            if shape == 2:  # while
                return ([f"{pad}{{", f"{pad}int {loop_var} = 0;",
                         f"{pad}while ({loop_var} < {trips}) {{"]
                        + body
                        + [f"{inner}{loop_var}++;", f"{pad}}}", f"{pad}}}"])
            # do-while (always runs at least once)
            return ([f"{pad}{{", f"{pad}int {loop_var} = {trips};",
                     f"{pad}do {{"]
                    + body
                    + [f"{inner}{loop_var}--;",
                       f"{pad}}} while ({loop_var} > 0);", f"{pad}}}"])
        if kind == 8:
            var = rng.choice(_INT_VARS)
            if self.has_helper and rng.random() < 0.5:
                other = rng.choice(_INT_VARS)
                return [f"{pad}{var} ^= helper({other}, {self.int_expr(2)});"]
            return [f"{pad}acc += (long) {var};",
                    f"{pad}facc += (double) {var};"]
        if self.has_global and rng.random() < 0.4:
            var = rng.choice(_INT_VARS)
            return [f"{pad}gstate ^= {var};",
                    f"{pad}{var} += gstate;"]
        var = rng.choice(_INT_VARS)
        cast = rng.choice(["byte", "short"])
        return [f"{pad}{var} = ({cast}) ({var} + {self.int_expr(2)});"]

    # -- whole program --------------------------------------------------------

    def _helper(self) -> list[str]:
        """A small straight-line helper; calls exercise inlining and
        the ABI canonicality rules."""
        body = self.int_expr(1)
        return [
            "int helper(int x, int y) {",
            f"    int r = {body};",
            "    return r + x - y;",
            "}",
        ]

    def generate(self) -> str:
        rng = self.rng
        lines: list[str] = []
        self.has_helper = rng.random() < 0.6
        if self.has_helper:
            # Helper expressions may only use parameters.
            saved = list(_INT_VARS)
            _INT_VARS[:] = ["x", "y"]
            lines.extend(self._helper())
            _INT_VARS[:] = saved
        self.has_global = rng.random() < 0.4
        if self.has_global:
            lines.append(f"int gstate = {rng.choice(_SEED_CONSTANTS)};")
        lines.append("void main() {")
        for name in _INT_VARS:
            lines.append(f"    int {name} = {rng.choice(_SEED_CONSTANTS)};")
        lines.append(f"    int[] arr = new int[{self.array_len}];")
        lines.append(f"    for (int k = 0; k < {self.array_len}; k++) "
                     "{ arr[k] = k * 2654435761; }")
        lines.append("    long acc = 0L;")
        lines.append("    double facc = 0.0;")
        for _ in range(rng.randrange(3, self.max_statements + 1)):
            lines.extend(self.statement())
        for name in _INT_VARS:
            lines.append(f"    sink({name});")
        if self.has_global:
            lines.append("    sink(gstate);")
        lines.append("    sink(acc);")
        lines.append("    sinkd(facc);")
        lines.append(f"    for (int k = 0; k < {self.array_len}; k++) "
                     "{ sink(arr[k]); }")
        lines.append("}")
        return "\n".join(lines)


def generate_program(seed: int) -> str:
    """One deterministic random J32 source per seed."""
    return ProgramGenerator(seed).generate()
