"""repro — a faithful reimplementation of "Effective Sign Extension
Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).

The supported public surface is the :mod:`repro.api` facade, re-exported
here::

    import repro

    result = repro.compile("kernel.j32")          # CompileResult
    outcome = repro.run("kernel.j32")             # RunResult (verified)
    suite = repro.bench(["huffman"],              # SuiteResult
                        options=repro.CompileOptions(jobs=2, cache=True))

Lower layers stay importable for IR-level work:

* :mod:`repro.frontend` — compile a Java-like mini language to the IR.
* :mod:`repro.core` — the paper's sign-extension elimination pipeline.
* :mod:`repro.driver` — batch compilation: compile cache + process pool.
* :mod:`repro.interp` — machine-faithful execution and measurement.
* :mod:`repro.harness` — regenerate the paper's tables and figures.
* :mod:`repro.fuzz` — differential fuzzing campaigns, divergence
  corpus, and witness reduction (``repro.fuzz_campaign``).
* :mod:`repro.profile` — the execution observatory: per-block hotness
  profiles, artifacts, and renderers.  The facade verb lives on the
  api module (``repro.api.profile`` — compile + execute + profile in
  one call; not re-exported here, where the name would shadow the
  submodule).

``compile_program`` and ``run_workload`` are the pre-facade entry
points; they still work but raise :class:`DeprecationWarning` (see
docs/API.md for the deprecation policy).
"""

__version__ = "1.8.0"

from .api import (  # noqa: E402
    CampaignConfig,
    CampaignResult,
    CompileOptions,
    CompileResult,
    ProfileResult,
    RunResult,
    SuiteResult,
    bench,
    compile,
    fuzz_campaign,
    run,
)
from .core import SignExtConfig, VARIANTS, compile_program  # noqa: E402
from .harness import run_workload  # noqa: E402

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CompileOptions",
    "CompileResult",
    "ProfileResult",
    "RunResult",
    "SignExtConfig",
    "SuiteResult",
    "VARIANTS",
    "__version__",
    "bench",
    "compile",
    "compile_program",
    "fuzz_campaign",
    "run",
    "run_workload",
]
