"""repro — a faithful reimplementation of "Effective Sign Extension
Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).

Public entry points:

* :mod:`repro.frontend` — compile a Java-like mini language to the IR.
* :mod:`repro.core` — the paper's sign-extension elimination pipeline.
* :mod:`repro.interp` — machine-faithful execution and measurement.
* :mod:`repro.harness` — regenerate the paper's tables and figures.
"""

__version__ = "1.0.0"
