"""Basic blocks."""

from __future__ import annotations

from collections.abc import Iterator

from .instruction import Instr


class Block:
    """A basic block: a label and a list of instructions.

    The final instruction must be a terminator (``BR``/``JMP``/``RET``).
    Predecessor/successor lists are derived by :class:`repro.ir.function.
    Function` from terminator targets and cached; call
    ``Function.invalidate_cfg()`` after structural edits.
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self.instrs: list[Instr] = []
        self.preds: list["Block"] = []
        self.succs: list["Block"] = []
        #: Estimated execution frequency, filled by frequency analysis.
        self.freq: float = 1.0
        #: Loop nesting depth, filled by loop analysis.
        self.loop_depth: int = 0

    @property
    def terminator(self) -> Instr:
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise ValueError(f"block {self.label} lacks a terminator")
        return self.instrs[-1]

    @property
    def body(self) -> list[Instr]:
        """Instructions excluding the terminator."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[:-1]
        return list(self.instrs)

    def append(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def insert_before(self, anchor: Instr, instr: Instr) -> Instr:
        """Insert ``instr`` immediately before ``anchor`` in this block."""
        index = self._index_of(anchor)
        self.instrs.insert(index, instr)
        return instr

    def insert_after(self, anchor: Instr, instr: Instr) -> Instr:
        """Insert ``instr`` immediately after ``anchor`` in this block."""
        index = self._index_of(anchor)
        self.instrs.insert(index + 1, instr)
        return instr

    def remove(self, instr: Instr) -> None:
        self.instrs.remove(instr)

    def _index_of(self, instr: Instr) -> int:
        for i, candidate in enumerate(self.instrs):
            if candidate is instr:
                return i
        raise ValueError(f"instruction not in block {self.label}: {instr}")

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.label} ({len(self.instrs)} instrs)>"
