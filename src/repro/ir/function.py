"""Functions and whole programs (modules)."""

from __future__ import annotations

from collections.abc import Iterator

from .block import Block
from .instruction import FuncSig, Global, Instr, VReg
from .opcodes import Opcode
from .types import ScalarType


class Function:
    """A function: an entry block, more blocks, parameters, registers.

    Parameters are virtual registers defined "before entry"; analyses
    model them as definitions at a pseudo entry point.
    """

    def __init__(self, name: str, sig: FuncSig) -> None:
        self.name = name
        self.sig = sig
        self.params: list[VReg] = []
        self.blocks: list[Block] = []
        self._blocks_by_label: dict[str, Block] = {}
        self._reg_names: set[str] = set()
        self._temp_counter = 0
        self._label_counter = 0
        self._cfg_valid = False

    # -- registers -----------------------------------------------------------

    def new_reg(self, type_: ScalarType, hint: str = "t") -> VReg:
        """Allocate a fresh virtual register with a unique name."""
        while True:
            self._temp_counter += 1
            name = f"{hint}{self._temp_counter}"
            if name not in self._reg_names:
                break
        self._reg_names.add(name)
        return VReg(name, type_)

    def named_reg(self, name: str, type_: ScalarType) -> VReg:
        """A register with a specific (caller-managed) name."""
        self._reg_names.add(name)
        return VReg(name, type_)

    def add_param(self, name: str, type_: ScalarType) -> VReg:
        reg = self.named_reg(name, type_)
        self.params.append(reg)
        return reg

    # -- blocks ---------------------------------------------------------------

    def new_block(self, hint: str = "bb") -> Block:
        while True:
            self._label_counter += 1
            label = f"{hint}{self._label_counter}"
            if label not in self._blocks_by_label:
                break
        return self.add_block(Block(label))

    def add_block(self, block: Block) -> Block:
        if block.label in self._blocks_by_label:
            raise ValueError(f"duplicate block label: {block.label}")
        self.blocks.append(block)
        self._blocks_by_label[block.label] = block
        self._cfg_valid = False
        return block

    def block(self, label: str) -> Block:
        return self._blocks_by_label[label]

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    # -- CFG maintenance --------------------------------------------------------

    def invalidate_cfg(self) -> None:
        self._cfg_valid = False

    def build_cfg(self) -> None:
        """(Re)compute predecessor/successor lists from terminators."""
        if self._cfg_valid:
            return
        for block in self.blocks:
            block.preds = []
            block.succs = []
        for block in self.blocks:
            for label in block.terminator.targets:
                succ = self._blocks_by_label[label]
                block.succs.append(succ)
                succ.preds.append(block)
        self._cfg_valid = True

    def drop_unreachable_blocks(self) -> int:
        """Remove blocks unreachable from the entry; returns count removed."""
        self.build_cfg()
        seen: set[str] = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.label in seen:
                continue
            seen.add(block.label)
            stack.extend(block.succs)
        dead = [b for b in self.blocks if b.label not in seen]
        if dead:
            self.blocks = [b for b in self.blocks if b.label in seen]
            self._blocks_by_label = {b.label: b for b in self.blocks}
            self._cfg_valid = False
        return len(dead)

    # -- iteration -----------------------------------------------------------------

    def instructions(self) -> Iterator[tuple[Block, Instr]]:
        """All (block, instruction) pairs in layout order."""
        for block in self.blocks:
            for instr in block.instrs:
                yield block, instr

    def count_instrs(self, opcode: Opcode | None = None) -> int:
        total = 0
        for _, instr in self.instructions():
            if opcode is None or instr.opcode is opcode:
                total += 1
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name}{self.sig} ({len(self.blocks)} blocks)>"


class Program:
    """A module: functions plus global variables, with a designated main."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, Global] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function: {func.name}")
        self.functions[func.name] = func
        return func

    def add_global(self, name: str, type_: ScalarType, initial: int | float = 0) -> Global:
        if name in self.globals:
            raise ValueError(f"duplicate global: {name}")
        glob = Global(name, type_, initial)
        self.globals[name] = glob
        return glob

    def function(self, name: str) -> Function:
        return self.functions[name]

    @property
    def main(self) -> Function:
        if "main" not in self.functions:
            raise ValueError("program has no main function")
        return self.functions["main"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name} ({len(self.functions)} functions)>"
