"""Opcode definitions and structural metadata for the repro IR.

The IR is a register machine in the style of a JIT compiler's low-level
intermediate language after lowering from bytecode: non-SSA virtual
registers, explicit basic blocks, explicit sign-extension instructions
(``EXTEND32`` is the paper's ``extend()``, ``JUST_EXTENDED`` its dummy
marker), and array accesses with Java bounds-check semantics.

Structural facts (operand counts, roles, terminator-ness) live here; the
sign-extension-specific semantic classification used by ``AnalyzeUSE`` /
``AnalyzeDEF`` lives in :mod:`repro.ir.semantics`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    # -- data movement -------------------------------------------------
    CONST = "const"
    MOV = "mov"

    # -- explicit extensions (the paper's subject matter) ---------------
    EXTEND8 = "extend8"
    EXTEND16 = "extend16"
    EXTEND32 = "extend32"
    ZEXT8 = "zext8"
    ZEXT16 = "zext16"
    ZEXT32 = "zext32"
    JUST_EXTENDED = "just_extended"  # dummy marker (Section 2.1)
    TRUNC32 = "trunc32"  # l2i

    # -- 32-bit integer arithmetic (executed on full 64-bit registers) --
    ADD32 = "add32"
    SUB32 = "sub32"
    MUL32 = "mul32"
    DIV32 = "div32"
    REM32 = "rem32"
    NEG32 = "neg32"
    AND32 = "and32"
    OR32 = "or32"
    XOR32 = "xor32"
    NOT32 = "not32"
    SHL32 = "shl32"
    SHR32 = "shr32"  # arithmetic; lowered to a sign-extracting field op
    USHR32 = "ushr32"  # logical; lowered to an unsigned field extract

    # -- 64-bit integer arithmetic --------------------------------------
    ADD64 = "add64"
    SUB64 = "sub64"
    MUL64 = "mul64"
    DIV64 = "div64"
    REM64 = "rem64"
    NEG64 = "neg64"
    AND64 = "and64"
    OR64 = "or64"
    XOR64 = "xor64"
    NOT64 = "not64"
    SHL64 = "shl64"
    SHR64 = "shr64"
    USHR64 = "ushr64"

    # -- comparisons (produce 0/1) ---------------------------------------
    CMP32 = "cmp32"  # compares low 32 bits only (IA64/PPC64 both have this)
    CMP64 = "cmp64"
    CMPF = "cmpf"

    # -- floating point ---------------------------------------------------
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FREM = "frem"
    FNEG = "fneg"
    FSQRT = "fsqrt"
    FSIN = "fsin"
    FCOS = "fcos"
    FEXP = "fexp"
    FLOG = "flog"
    FABS = "fabs"
    FFLOOR = "ffloor"
    FPOW = "fpow"

    # -- conversions ------------------------------------------------------
    I2D = "i2d"  # requires a canonical (sign-extended) 32-bit source
    L2D = "l2d"
    D2I = "d2i"  # Java saturating conversion; canonical result
    D2L = "d2l"

    # -- memory -----------------------------------------------------------
    NEWARRAY = "newarray"
    ALOAD = "aload"
    ASTORE = "astore"
    ARRAYLEN = "arraylen"
    GLOAD = "gload"
    GSTORE = "gstore"

    # -- control ------------------------------------------------------------
    BR = "br"  # conditional branch: tests low 32 bits != 0
    JMP = "jmp"
    RET = "ret"
    CALL = "call"
    SINK = "sink"  # observable output (checksum accumulator)
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Opcode.{self.name}"


class Role(enum.Enum):
    """Role an operand plays in its instruction.

    Drives ``AnalyzeUSE``: a VALUE operand's classification depends on the
    opcode, an ARRAY_INDEX operand is handled by ``AnalyzeARRAY``, a
    SHIFT_AMOUNT or CONDITION operand never needs its upper bits, etc.
    """

    VALUE = "value"
    ARRAY_REF = "array_ref"
    ARRAY_INDEX = "array_index"
    STORE_VALUE = "store_value"
    SHIFT_AMOUNT = "shift_amount"
    CONDITION = "condition"
    LENGTH = "length"
    ARG = "arg"
    RET_VALUE = "ret_value"


@dataclass(frozen=True)
class OpInfo:
    """Structural description of one opcode."""

    opcode: Opcode
    n_srcs: int  # -1 means variable (CALL, SINK with 0/1)
    roles: tuple[Role, ...]  # per fixed operand; variable ops use roles[-1]
    has_dest: bool
    is_terminator: bool = False
    commutative: bool = False
    has_side_effects: bool = False

    def role_of(self, index: int) -> Role:
        if index < len(self.roles):
            return self.roles[index]
        if self.roles:
            return self.roles[-1]
        raise IndexError(f"{self.opcode} has no operand roles")


def _info(
    opcode: Opcode,
    n_srcs: int,
    roles: tuple[Role, ...],
    has_dest: bool,
    **kwargs: bool,
) -> OpInfo:
    return OpInfo(opcode, n_srcs, roles, has_dest, **kwargs)


_V = Role.VALUE

OP_INFO: dict[Opcode, OpInfo] = {}


def _register(info: OpInfo) -> None:
    OP_INFO[info.opcode] = info


for _unary in (
    Opcode.MOV,
    Opcode.EXTEND8,
    Opcode.EXTEND16,
    Opcode.EXTEND32,
    Opcode.ZEXT8,
    Opcode.ZEXT16,
    Opcode.ZEXT32,
    Opcode.JUST_EXTENDED,
    Opcode.TRUNC32,
    Opcode.NEG32,
    Opcode.NOT32,
    Opcode.NEG64,
    Opcode.NOT64,
    Opcode.FNEG,
    Opcode.FSQRT,
    Opcode.FSIN,
    Opcode.FCOS,
    Opcode.FEXP,
    Opcode.FLOG,
    Opcode.FABS,
    Opcode.FFLOOR,
    Opcode.I2D,
    Opcode.L2D,
    Opcode.D2I,
    Opcode.D2L,
):
    _register(_info(_unary, 1, (_V,), True))

for _binary in (
    Opcode.ADD32,
    Opcode.SUB32,
    Opcode.MUL32,
    Opcode.DIV32,
    Opcode.REM32,
    Opcode.AND32,
    Opcode.OR32,
    Opcode.XOR32,
    Opcode.ADD64,
    Opcode.SUB64,
    Opcode.MUL64,
    Opcode.DIV64,
    Opcode.REM64,
    Opcode.AND64,
    Opcode.OR64,
    Opcode.XOR64,
    Opcode.FADD,
    Opcode.FSUB,
    Opcode.FMUL,
    Opcode.FDIV,
    Opcode.FREM,
    Opcode.FPOW,
):
    commutative = _binary in (
        Opcode.ADD32,
        Opcode.MUL32,
        Opcode.AND32,
        Opcode.OR32,
        Opcode.XOR32,
        Opcode.ADD64,
        Opcode.MUL64,
        Opcode.AND64,
        Opcode.OR64,
        Opcode.XOR64,
        Opcode.FADD,
        Opcode.FMUL,
    )
    _register(_info(_binary, 2, (_V, _V), True, commutative=commutative))

for _shift in (
    Opcode.SHL32,
    Opcode.SHR32,
    Opcode.USHR32,
    Opcode.SHL64,
    Opcode.SHR64,
    Opcode.USHR64,
):
    _register(_info(_shift, 2, (_V, Role.SHIFT_AMOUNT), True))

for _cmp in (Opcode.CMP32, Opcode.CMP64, Opcode.CMPF):
    _register(_info(_cmp, 2, (_V, _V), True))

_register(_info(Opcode.CONST, 0, (), True))
_register(_info(Opcode.NEWARRAY, 1, (Role.LENGTH,), True, has_side_effects=True))
_register(_info(Opcode.ALOAD, 2, (Role.ARRAY_REF, Role.ARRAY_INDEX), True,
                has_side_effects=True))
_register(
    _info(
        Opcode.ASTORE,
        3,
        (Role.ARRAY_REF, Role.ARRAY_INDEX, Role.STORE_VALUE),
        False,
        has_side_effects=True,
    )
)
_register(_info(Opcode.ARRAYLEN, 1, (Role.ARRAY_REF,), True))
_register(_info(Opcode.GLOAD, 0, (), True, has_side_effects=True))
_register(_info(Opcode.GSTORE, 1, (Role.STORE_VALUE,), False, has_side_effects=True))

_register(_info(Opcode.BR, 1, (Role.CONDITION,), False, is_terminator=True))
_register(_info(Opcode.JMP, 0, (), False, is_terminator=True))
_register(_info(Opcode.RET, -1, (Role.RET_VALUE,), False, is_terminator=True))
_register(_info(Opcode.CALL, -1, (Role.ARG,), True, has_side_effects=True))
_register(_info(Opcode.SINK, 1, (Role.ARG,), False, has_side_effects=True))
_register(_info(Opcode.NOP, 0, (), False))


class Cond(enum.Enum):
    """Comparison conditions (signed unless prefixed with U)."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"

    @property
    def is_unsigned(self) -> bool:
        return self in (Cond.ULT, Cond.ULE, Cond.UGT, Cond.UGE)

    def negate(self) -> "Cond":
        return _NEGATED[self]

    def swap(self) -> "Cond":
        """Condition equivalent after swapping the two operands."""
        return _SWAPPED[self]


_NEGATED = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.LE: Cond.GT,
    Cond.GT: Cond.LE,
    Cond.GE: Cond.LT,
    Cond.ULT: Cond.UGE,
    Cond.ULE: Cond.UGT,
    Cond.UGT: Cond.ULE,
    Cond.UGE: Cond.ULT,
}

_SWAPPED = {
    Cond.EQ: Cond.EQ,
    Cond.NE: Cond.NE,
    Cond.LT: Cond.GT,
    Cond.LE: Cond.GE,
    Cond.GT: Cond.LT,
    Cond.GE: Cond.LE,
    Cond.ULT: Cond.UGT,
    Cond.ULE: Cond.UGE,
    Cond.UGT: Cond.ULT,
    Cond.UGE: Cond.ULE,
}

#: Opcodes that are explicit sign extensions (candidates for elimination).
EXTEND_OPS = frozenset({Opcode.EXTEND8, Opcode.EXTEND16, Opcode.EXTEND32})

#: Bit width sign-extended *from*, per extension opcode.
EXTEND_BITS = {
    Opcode.EXTEND8: 8,
    Opcode.EXTEND16: 16,
    Opcode.EXTEND32: 32,
    Opcode.ZEXT8: 8,
    Opcode.ZEXT16: 16,
    Opcode.ZEXT32: 32,
}
