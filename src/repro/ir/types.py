"""Scalar and array types for the repro IR.

The IR models a 64-bit machine compiling a 32-bit-centric language (Java
``int`` is 32 bits).  Every virtual register physically occupies a 64-bit
machine register; the *declared* type records the semantic width so the
sign-extension machinery knows which values must be kept canonical
(sign-extended) and which instructions only look at the low bits.
"""

from __future__ import annotations

import enum


class ScalarType(enum.Enum):
    """Declared width/kind of a register or array element."""

    I8 = "i8"
    I16 = "i16"
    I32 = "i32"
    I64 = "i64"
    U16 = "u16"  # Java char: unsigned 16-bit
    F64 = "f64"
    REF = "ref"  # array reference

    @property
    def is_int(self) -> bool:
        return self in _INT_TYPES

    @property
    def is_float(self) -> bool:
        return self is ScalarType.F64

    @property
    def is_ref(self) -> bool:
        return self is ScalarType.REF

    @property
    def is_narrow_int(self) -> bool:
        """Integer narrower than the 64-bit register (needs extension)."""
        return self in _NARROW_INT_TYPES

    @property
    def bits(self) -> int:
        """Semantic bit width of the type."""
        return _BITS[self]

    @property
    def signed(self) -> bool:
        """Whether the semantic value is interpreted as signed."""
        return self is not ScalarType.U16

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScalarType.{self.name}"


_INT_TYPES = frozenset(
    {ScalarType.I8, ScalarType.I16, ScalarType.I32, ScalarType.I64, ScalarType.U16}
)
_NARROW_INT_TYPES = frozenset(
    {ScalarType.I8, ScalarType.I16, ScalarType.I32, ScalarType.U16}
)
_BITS = {
    ScalarType.I8: 8,
    ScalarType.I16: 16,
    ScalarType.U16: 16,
    ScalarType.I32: 32,
    ScalarType.I64: 64,
    ScalarType.F64: 64,
    ScalarType.REF: 64,
}

#: Limits of the signed 32-bit representation, used throughout the
#: sign-extension theorems (Section 3 of the paper).
INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1
UINT32_MASK = 0xFFFF_FFFF
UINT64_MASK = 0xFFFF_FFFF_FFFF_FFFF

#: Java's maximum array length (the paper's default ``maxlen``).
JAVA_MAX_ARRAY_LENGTH = 0x7FFF_FFFF


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a Python int.

    >>> sign_extend(0xFFFF_FFFF, 32)
    -1
    >>> sign_extend(0x7FFF_FFFF, 32)
    2147483647
    """
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        return value - (1 << bits)
    return value


def zero_extend(value: int, bits: int) -> int:
    """Zero-extend the low ``bits`` bits of ``value``.

    >>> zero_extend(-1, 32)
    4294967295
    """
    return value & ((1 << bits) - 1)


def wrap_u64(value: int) -> int:
    """Wrap an integer into the unsigned 64-bit register representation."""
    return value & UINT64_MASK


def as_signed64(value: int) -> int:
    """Interpret an unsigned 64-bit register value as signed."""
    return sign_extend(value, 64)


def low32(value: int) -> int:
    """Low 32 bits of a register value (unsigned)."""
    return value & UINT32_MASK


def is_canonical32(register_value: int) -> bool:
    """True when a 64-bit register holds a sign-extended 32-bit value.

    >>> is_canonical32(wrap_u64(-1))
    True
    >>> is_canonical32(0xFFFF_FFFF)
    False
    """
    register_value = wrap_u64(register_value)
    return register_value == wrap_u64(sign_extend(register_value, 32))
