"""A fluent builder for constructing IR functions.

Used by the frontend lowering, by tests, and by the paper-example
reproductions.  The builder tracks a current insertion block; helpers
materialize constants and allocate destination registers automatically.
"""

from __future__ import annotations

from .block import Block
from .function import Function, Program
from .instruction import FuncSig, Instr, VReg
from .opcodes import Cond, Opcode, OP_INFO
from .types import ScalarType

_BIN_RESULT = {
    Opcode.ADD32: ScalarType.I32,
    Opcode.SUB32: ScalarType.I32,
    Opcode.MUL32: ScalarType.I32,
    Opcode.DIV32: ScalarType.I32,
    Opcode.REM32: ScalarType.I32,
    Opcode.AND32: ScalarType.I32,
    Opcode.OR32: ScalarType.I32,
    Opcode.XOR32: ScalarType.I32,
    Opcode.SHL32: ScalarType.I32,
    Opcode.SHR32: ScalarType.I32,
    Opcode.USHR32: ScalarType.I32,
    Opcode.ADD64: ScalarType.I64,
    Opcode.SUB64: ScalarType.I64,
    Opcode.MUL64: ScalarType.I64,
    Opcode.DIV64: ScalarType.I64,
    Opcode.REM64: ScalarType.I64,
    Opcode.AND64: ScalarType.I64,
    Opcode.OR64: ScalarType.I64,
    Opcode.XOR64: ScalarType.I64,
    Opcode.SHL64: ScalarType.I64,
    Opcode.SHR64: ScalarType.I64,
    Opcode.USHR64: ScalarType.I64,
    Opcode.FADD: ScalarType.F64,
    Opcode.FSUB: ScalarType.F64,
    Opcode.FMUL: ScalarType.F64,
    Opcode.FDIV: ScalarType.F64,
    Opcode.FREM: ScalarType.F64,
    Opcode.FPOW: ScalarType.F64,
}

_UN_RESULT = {
    Opcode.NEG32: ScalarType.I32,
    Opcode.NOT32: ScalarType.I32,
    Opcode.NEG64: ScalarType.I64,
    Opcode.NOT64: ScalarType.I64,
    Opcode.FNEG: ScalarType.F64,
    Opcode.FSQRT: ScalarType.F64,
    Opcode.FSIN: ScalarType.F64,
    Opcode.FCOS: ScalarType.F64,
    Opcode.FEXP: ScalarType.F64,
    Opcode.FLOG: ScalarType.F64,
    Opcode.FABS: ScalarType.F64,
    Opcode.FFLOOR: ScalarType.F64,
    Opcode.I2D: ScalarType.F64,
    Opcode.L2D: ScalarType.F64,
    Opcode.D2I: ScalarType.I32,
    Opcode.D2L: ScalarType.I64,
    Opcode.EXTEND8: ScalarType.I32,
    Opcode.EXTEND16: ScalarType.I32,
    Opcode.EXTEND32: ScalarType.I32,
    Opcode.ZEXT8: ScalarType.I32,
    Opcode.ZEXT16: ScalarType.I32,
    Opcode.ZEXT32: ScalarType.I64,
    Opcode.JUST_EXTENDED: ScalarType.I32,
    Opcode.TRUNC32: ScalarType.I32,
}


class FunctionBuilder:
    """Builds one function, one block at a time."""

    def __init__(self, program: Program, name: str, sig: FuncSig) -> None:
        self.program = program
        self.func = Function(name, sig)
        program.add_function(self.func)
        self.current: Block = self.func.new_block("entry")

    # -- block management -------------------------------------------------

    def block(self, hint: str = "bb") -> Block:
        """Create a new block without switching to it."""
        return self.func.new_block(hint)

    def switch(self, block: Block) -> Block:
        self.current = block
        return block

    def param(self, name: str, type_: ScalarType) -> VReg:
        return self.func.add_param(name, type_)

    # -- low-level emission -------------------------------------------------

    def emit(self, instr: Instr) -> Instr:
        self.current.append(instr)
        if instr.is_terminator:
            self.func.invalidate_cfg()
        return instr

    # -- values -------------------------------------------------------------

    def const(self, value: int | float, type_: ScalarType = ScalarType.I32,
              dest: VReg | None = None) -> VReg:
        dest = dest or self.func.new_reg(type_, "c")
        self.emit(Instr(Opcode.CONST, dest, imm=value, elem=type_))
        return dest

    def mov(self, src: VReg, dest: VReg | None = None) -> VReg:
        dest = dest or self.func.new_reg(src.type)
        self.emit(Instr(Opcode.MOV, dest, (src,)))
        return dest

    def unop(self, opcode: Opcode, src: VReg, dest: VReg | None = None) -> VReg:
        dest = dest or self.func.new_reg(_UN_RESULT[opcode])
        self.emit(Instr(opcode, dest, (src,)))
        return dest

    def binop(self, opcode: Opcode, lhs: VReg, rhs: VReg,
              dest: VReg | None = None) -> VReg:
        dest = dest or self.func.new_reg(_BIN_RESULT[opcode])
        self.emit(Instr(opcode, dest, (lhs, rhs)))
        return dest

    def cmp(self, opcode: Opcode, cond: Cond, lhs: VReg, rhs: VReg,
            dest: VReg | None = None) -> VReg:
        dest = dest or self.func.new_reg(ScalarType.I32, "p")
        self.emit(Instr(opcode, dest, (lhs, rhs), cond=cond))
        return dest

    def extend32(self, src: VReg, dest: VReg | None = None) -> VReg:
        return self.unop(Opcode.EXTEND32, src, dest or src)

    # -- memory ----------------------------------------------------------------

    def newarray(self, elem: ScalarType, length: VReg,
                 dest: VReg | None = None) -> VReg:
        dest = dest or self.func.new_reg(ScalarType.REF, "a")
        self.emit(Instr(Opcode.NEWARRAY, dest, (length,), elem=elem))
        return dest

    def aload(self, arr: VReg, index: VReg, elem: ScalarType,
              dest: VReg | None = None) -> VReg:
        result_type = ScalarType.I64 if elem is ScalarType.I64 else (
            ScalarType.F64 if elem is ScalarType.F64 else (
                ScalarType.REF if elem is ScalarType.REF else ScalarType.I32))
        dest = dest or self.func.new_reg(result_type)
        self.emit(Instr(Opcode.ALOAD, dest, (arr, index), elem=elem))
        return dest

    def astore(self, arr: VReg, index: VReg, value: VReg, elem: ScalarType) -> None:
        self.emit(Instr(Opcode.ASTORE, None, (arr, index, value), elem=elem))

    def arraylen(self, arr: VReg, dest: VReg | None = None) -> VReg:
        dest = dest or self.func.new_reg(ScalarType.I32, "len")
        self.emit(Instr(Opcode.ARRAYLEN, dest, (arr,)))
        return dest

    def gload(self, name: str, type_: ScalarType, dest: VReg | None = None) -> VReg:
        dest = dest or self.func.new_reg(type_, "g")
        self.emit(Instr(Opcode.GLOAD, dest, (), gname=name, elem=type_))
        return dest

    def gstore(self, name: str, value: VReg, type_: ScalarType) -> None:
        self.emit(Instr(Opcode.GSTORE, None, (value,), gname=name, elem=type_))

    # -- control --------------------------------------------------------------

    def br(self, cond_reg: VReg, then_block: Block, else_block: Block) -> None:
        self.emit(Instr(Opcode.BR, None, (cond_reg,),
                        targets=(then_block.label, else_block.label)))

    def jmp(self, target: Block) -> None:
        self.emit(Instr(Opcode.JMP, None, (), targets=(target.label,)))

    def ret(self, value: VReg | None = None) -> None:
        srcs = (value,) if value is not None else ()
        self.emit(Instr(Opcode.RET, None, srcs))

    def call(self, callee: str, args: list[VReg],
             ret_type: ScalarType | None = None) -> VReg | None:
        dest = self.func.new_reg(ret_type, "r") if ret_type is not None else None
        self.emit(Instr(Opcode.CALL, dest, tuple(args), callee=callee))
        return dest

    def sink(self, value: VReg) -> None:
        self.emit(Instr(Opcode.SINK, None, (value,)))


def build_function(program: Program, name: str,
                   params: list[tuple[str, ScalarType]],
                   ret: ScalarType | None) -> FunctionBuilder:
    """Convenience: create a builder with parameters already declared."""
    sig = FuncSig(tuple(t for _, t in params), ret)
    builder = FunctionBuilder(program, name, sig)
    for pname, ptype in params:
        builder.param(pname, ptype)
    return builder
