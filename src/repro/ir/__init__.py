"""The repro intermediate representation.

A non-SSA, register-based IR in the style of the JIT compiler IL the
paper targets: typed virtual registers, explicit basic blocks, explicit
``extend`` instructions, Java-semantics array accesses.
"""

from .block import Block
from .builder import FunctionBuilder, build_function
from .function import Function, Program
from .instruction import FuncSig, Global, Instr, VReg
from .opcodes import Cond, EXTEND_BITS, EXTEND_OPS, OP_INFO, Opcode, Role
from .printer import format_function, format_program
from .types import (
    INT32_MAX,
    INT32_MIN,
    JAVA_MAX_ARRAY_LENGTH,
    ScalarType,
    is_canonical32,
    low32,
    sign_extend,
    wrap_u64,
    zero_extend,
)
from .verifier import VerificationError, verify_function, verify_program

__all__ = [
    "Block",
    "Cond",
    "EXTEND_BITS",
    "EXTEND_OPS",
    "FuncSig",
    "Function",
    "FunctionBuilder",
    "Global",
    "INT32_MAX",
    "INT32_MIN",
    "Instr",
    "JAVA_MAX_ARRAY_LENGTH",
    "OP_INFO",
    "Opcode",
    "Program",
    "Role",
    "ScalarType",
    "VReg",
    "VerificationError",
    "build_function",
    "format_function",
    "format_program",
    "is_canonical32",
    "low32",
    "sign_extend",
    "verify_function",
    "verify_program",
    "wrap_u64",
    "zero_extend",
]
