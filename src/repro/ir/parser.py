"""Textual IR parser — the inverse of :mod:`repro.ir.printer`.

Accepts the printer's output format, so IR can be round-tripped,
written by hand in tests, or shipped as golden files:

.. code-block:: text

    program demo
    global $mem: i32 = 5

    func @main() -> f64 params() {
    entry:
      %c1 = const.i32 10
      %a = newarray.i32 %c1
      jmp ->loop
    loop:
      ...
    }

Registers are typed at first mention from context (destination types
come from the opcode table; operand registers must have been defined or
declared as parameters).
"""

from __future__ import annotations

import re

from .block import Block
from .builder import _BIN_RESULT, _UN_RESULT
from .function import Function, Program
from .instruction import FuncSig, Instr, VReg
from .opcodes import Cond, OP_INFO, Opcode
from .types import ScalarType

_SCALARS = {t.value: t for t in ScalarType}
_CONDS = {c.value: c for c in Cond}
_OPCODES = {o.value: o for o in Opcode}

_FUNC_RE = re.compile(
    r"func @(?P<name>\w+)\((?P<args>[^)]*)\)\s*->\s*(?P<ret>\S+)\s*"
    r"params\((?P<params>[^)]*)\)\s*\{"
)
_GLOBAL_RE = re.compile(
    r"global \$(?P<name>\w+):\s*(?P<type>\w+)(\s*=\s*(?P<init>\S+))?"
)
_LABEL_RE = re.compile(r"(?P<label>[A-Za-z_][\w.]*):(\s*;.*)?$")


class IRParseError(Exception):
    pass


def parse_program(text: str) -> Program:
    program = Program()
    lines = [_strip(line) for line in text.splitlines()]
    index = 0
    while index < len(lines):
        line = lines[index]
        if not line:
            index += 1
            continue
        if line.startswith("program "):
            program.name = line.split(None, 1)[1].strip()
            index += 1
            continue
        match = _GLOBAL_RE.match(line)
        if match:
            init_text = match.group("init")
            init: int | float = 0
            if init_text is not None:
                init = _parse_number(init_text)
            program.add_global(match.group("name"),
                               _scalar(match.group("type")), init)
            index += 1
            continue
        match = _FUNC_RE.match(line)
        if match:
            index = _parse_function(program, match, lines, index + 1)
            continue
        raise IRParseError(f"unexpected line: {line!r}")
    return program


def parse_function_text(text: str) -> Function:
    """Parse a single function (no ``program`` header required)."""
    program = parse_program(text)
    if len(program.functions) != 1:
        raise IRParseError("expected exactly one function")
    return next(iter(program.functions.values()))


def _strip(line: str) -> str:
    # Remove trailing comments outside of any string syntax (the IR has
    # no string literals).
    if ";" in line:
        line = line.split(";", 1)[0]
    return line.strip()


def _scalar(name: str) -> ScalarType:
    try:
        return _SCALARS[name]
    except KeyError:
        raise IRParseError(f"unknown type {name!r}") from None


def _parse_number(token: str) -> int | float:
    try:
        return int(token, 0)
    except ValueError:
        return float(token)


def _parse_function(program: Program, match: re.Match, lines: list[str],
                    index: int) -> int:
    name = match.group("name")
    ret_text = match.group("ret")
    ret = None if ret_text == "void" else _scalar(ret_text)
    arg_types = [
        _scalar(tok.strip()) for tok in match.group("args").split(",")
        if tok.strip()
    ]
    func = Function(name, FuncSig(tuple(arg_types), ret))
    program.add_function(func)

    regs: dict[str, VReg] = {}
    param_tokens = [
        tok.strip() for tok in match.group("params").split(",")
        if tok.strip()
    ]
    if len(param_tokens) != len(arg_types):
        raise IRParseError(f"{name}: params/signature arity mismatch")
    for token, type_ in zip(param_tokens, arg_types):
        reg_name = _reg_name(token)
        reg = func.add_param(reg_name, type_)
        regs[reg_name] = reg

    current: Block | None = None
    while index < len(lines):
        line = lines[index]
        index += 1
        if not line:
            continue
        if line == "}":
            func.invalidate_cfg()
            return index
        label = _LABEL_RE.match(line)
        if label:
            current = func.add_block(Block(label.group("label")))
            continue
        if current is None:
            raise IRParseError(f"{name}: instruction before any label")
        current.append(_parse_instr(func, regs, line))
    raise IRParseError(f"{name}: missing closing brace")


def _reg_name(token: str) -> str:
    token = token.strip()
    if not token.startswith("%"):
        raise IRParseError(f"expected register, got {token!r}")
    return token[1:]


def _dest_type(opcode: Opcode, elem: ScalarType | None) -> ScalarType:
    if opcode in _BIN_RESULT:
        return _BIN_RESULT[opcode]
    if opcode in _UN_RESULT:
        return _UN_RESULT[opcode]
    if opcode in (Opcode.CMP32, Opcode.CMP64, Opcode.CMPF):
        return ScalarType.I32
    if opcode is Opcode.CONST:
        if elem in (ScalarType.F64, ScalarType.I64, ScalarType.REF):
            return elem
        return ScalarType.I32
    if opcode is Opcode.NEWARRAY:
        return ScalarType.REF
    if opcode is Opcode.ARRAYLEN:
        return ScalarType.I32
    if opcode in (Opcode.ALOAD, Opcode.GLOAD):
        if elem is ScalarType.F64:
            return ScalarType.F64
        if elem is ScalarType.I64:
            return ScalarType.I64
        if elem is ScalarType.REF:
            return ScalarType.REF
        return ScalarType.I32
    return ScalarType.I32  # MOV/CALL destinations refined by context


def _parse_instr(func: Function, regs: dict[str, VReg], line: str) -> Instr:
    dest_name: str | None = None
    if line.startswith("%") and "=" in line:
        dest_token, line = line.split("=", 1)
        dest_name = _reg_name(dest_token)
        line = line.strip()

    tokens = line.split(None, 1)
    mnemonic = tokens[0]
    rest = tokens[1] if len(tokens) > 1 else ""

    parts = mnemonic.split(".")
    opcode = _OPCODES.get(parts[0])
    if opcode is None:
        raise IRParseError(f"unknown opcode {parts[0]!r}")
    cond: Cond | None = None
    elem: ScalarType | None = None
    for suffix in parts[1:]:
        if suffix in _CONDS:
            cond = _CONDS[suffix]
        elif suffix in _SCALARS:
            elem = _SCALARS[suffix]
        else:
            raise IRParseError(f"unknown suffix {suffix!r} on {mnemonic}")

    srcs: list[VReg] = []
    targets: list[str] = []
    imm: int | float | None = None
    callee: str | None = None
    gname: str | None = None
    for raw in (tok.strip() for tok in rest.split(",") if tok.strip()):
        if raw.startswith("->"):
            targets.append(raw[2:])
        elif raw.startswith("%"):
            reg_name = _reg_name(raw)
            if reg_name not in regs:
                raise IRParseError(f"use of unknown register %{reg_name}")
            srcs.append(regs[reg_name])
        elif raw.startswith("@"):
            callee = raw[1:]
        elif raw.startswith("$"):
            gname = raw[1:]
        else:
            imm = _parse_number(raw)

    dest: VReg | None = None
    if dest_name is not None:
        if dest_name in regs:
            dest = regs[dest_name]
        else:
            if opcode is Opcode.MOV and srcs:
                dest_type = srcs[0].type  # copies inherit the source type
            else:
                dest_type = _dest_type(opcode, elem)
            dest = func.named_reg(dest_name, dest_type)
            regs[dest_name] = dest

    return Instr(opcode, dest, tuple(srcs), imm=imm, cond=cond, elem=elem,
                 callee=callee, gname=gname, targets=tuple(targets))
