"""Virtual registers and instructions.

Design notes
------------
* The IR is **not** SSA: a virtual register may have many definitions, as
  in the JIT IR the paper targets.  Def-use information comes from
  UD/DU chains (:mod:`repro.analysis.ud_du`), exactly as in the paper.
* All source operands are virtual registers; constants are materialized
  with ``CONST``.  This keeps UD/DU chains uniform and matches the
  register-machine flavour of the original system.
* Each instruction has a process-unique ``uid`` so analyses can key
  side tables (the paper's USE/DEF/ARRAY traversal flags) off identity
  without mutating instructions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .opcodes import OP_INFO, Cond, Opcode, OpInfo, Role
from .types import ScalarType

_uid_counter = itertools.count(1)


@dataclass(frozen=True)
class VReg:
    """A virtual register with a declared semantic type."""

    name: str
    type: ScalarType

    def __str__(self) -> str:
        return f"%{self.name}"

    @property
    def is_narrow(self) -> bool:
        return self.type.is_narrow_int


class Instr:
    """One IR instruction.

    Only the fields meaningful for the opcode are set; the rest stay
    ``None``.  ``targets`` holds successor block labels for terminators.
    """

    __slots__ = (
        "uid",
        "opcode",
        "dest",
        "srcs",
        "imm",
        "cond",
        "elem",
        "callee",
        "gname",
        "targets",
        "comment",
    )

    def __init__(
        self,
        opcode: Opcode,
        dest: VReg | None = None,
        srcs: tuple[VReg, ...] = (),
        *,
        imm: int | float | None = None,
        cond: Cond | None = None,
        elem: ScalarType | None = None,
        callee: str | None = None,
        gname: str | None = None,
        targets: tuple[str, ...] = (),
        comment: str = "",
    ) -> None:
        self.uid: int = next(_uid_counter)
        self.opcode = opcode
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.cond = cond
        self.elem = elem
        self.callee = callee
        self.gname = gname
        self.targets = tuple(targets)
        self.comment = comment

    # -- structural queries ------------------------------------------------

    @property
    def info(self) -> OpInfo:
        return OP_INFO[self.opcode]

    @property
    def is_terminator(self) -> bool:
        return self.info.is_terminator

    @property
    def is_extend(self) -> bool:
        return self.opcode in (Opcode.EXTEND8, Opcode.EXTEND16, Opcode.EXTEND32)

    @property
    def has_side_effects(self) -> bool:
        return self.info.has_side_effects or self.is_terminator

    def role_of(self, index: int) -> Role:
        return self.info.role_of(index)

    def copy(self) -> "Instr":
        """A fresh instruction (new uid) with identical payload."""
        return Instr(
            self.opcode,
            self.dest,
            self.srcs,
            imm=self.imm,
            cond=self.cond,
            elem=self.elem,
            callee=self.callee,
            gname=self.gname,
            targets=self.targets,
            comment=self.comment,
        )

    # -- rendering ----------------------------------------------------------

    def __str__(self) -> str:
        parts: list[str] = []
        if self.dest is not None:
            parts.append(f"{self.dest} =")
        name = self.opcode.value
        if self.cond is not None:
            name += f".{self.cond.value}"
        if self.elem is not None:
            name += f".{self.elem.value}"
        parts.append(name)
        operands: list[str] = [str(s) for s in self.srcs]
        if self.imm is not None:
            operands.append(repr(self.imm))
        if self.callee is not None:
            operands.insert(0, f"@{self.callee}")
        if self.gname is not None:
            operands.insert(0, f"${self.gname}")
        if self.targets:
            operands.extend(f"->{t}" for t in self.targets)
        parts.append(", ".join(operands))
        text = " ".join(p for p in parts if p)
        if self.comment:
            text += f"  ; {self.comment}"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instr#{self.uid} {self}>"


@dataclass
class Global:
    """A global scalar or array-reference slot."""

    name: str
    type: ScalarType
    initial: int | float = 0


@dataclass
class FuncSig:
    """Signature of a function: parameter and return types."""

    params: tuple[ScalarType, ...]
    ret: ScalarType | None

    def __str__(self) -> str:
        args = ", ".join(p.value for p in self.params)
        ret = self.ret.value if self.ret is not None else "void"
        return f"({args}) -> {ret}"
