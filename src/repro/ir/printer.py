"""Textual rendering of IR functions and programs."""

from __future__ import annotations

from .function import Function, Program


def format_function(func: Function, *, freq: bool = False) -> str:
    """Render a function as text.

    With ``freq=True`` annotate blocks with their estimated execution
    frequency and loop depth (useful when debugging order determination).
    """
    lines = [f"func @{func.name}{func.sig} "
             f"params({', '.join(str(p) for p in func.params)}) {{"]
    for block in func.blocks:
        header = f"{block.label}:"
        if freq:
            header += f"    ; freq={block.freq:g} depth={block.loop_depth}"
        lines.append(header)
        for instr in block.instrs:
            lines.append(f"  {instr}")
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    parts = [f"program {program.name}"]
    for glob in program.globals.values():
        parts.append(f"global ${glob.name}: {glob.type.value} = {glob.initial}")
    for func in program.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)
