"""Sign-extension-relevant semantic classification of IR instructions.

This module encodes the facts that drive every phase of the paper's
algorithm:

* ``classify_use`` — for a (instruction, operand) pair: do the upper 32
  bits of the operand register affect execution?  This is the paper's
  ``AnalyzeUSE`` case analysis: *Case 1* (upper bits ignored, e.g. a
  32-bit store or compare), *Case 2* (the operand is unnecessary iff the
  destination is unnecessary, e.g. an addition), array-index operands
  (handled by ``AnalyzeARRAY``), or a hard requirement (e.g. ``i2d``,
  which converts the full register).
* ``canonical_bits`` — for a definition: the narrowest width ``w`` such
  that the destination register is *guaranteed* to hold a value equal to
  its ``w``-bit sign extension.  This is ``AnalyzeDEF`` Case 1.
* ``upper32_zero`` — for a definition: are the upper 32 bits of the
  destination guaranteed zero?  Needed by Theorems 1 and 3.
* propagation predicates for ``AnalyzeDEF`` Case 2 and for the array
  theorems' transparency rule.

All classification is parameterized by :class:`~repro.machine.model.
MachineTraits` because implicit sign extension differs per target (IA64
loads zero-extend; PPC64 ``lwa``/``lha`` sign-extend).
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from ..machine.model import LoadExt, MachineTraits
from .instruction import Instr
from .opcodes import Opcode, Role
from .types import INT32_MAX, ScalarType


class UseKind(enum.Enum):
    """How an instruction consumes one source operand's upper 32 bits."""

    IGNORES_HIGH = "ignores_high"  # AnalyzeUSE Case 1
    PROPAGATES = "propagates"  # AnalyzeUSE Case 2
    ARRAY_INDEX = "array_index"  # handled by AnalyzeARRAY
    REQUIRES = "requires"  # canonical value needed
    IRRELEVANT = "irrelevant"  # operand is not a narrow integer


#: Case-2 opcodes whose low-32 result depends only on low-32 inputs.
_PROPAGATING_OPS = frozenset(
    {
        Opcode.MOV,
        Opcode.ADD32,
        Opcode.SUB32,
        Opcode.MUL32,
        Opcode.NEG32,
        Opcode.AND32,
        Opcode.OR32,
        Opcode.XOR32,
        Opcode.NOT32,
        Opcode.SHL32,
    }
)

#: Subset of Case-2 opcodes through which AnalyzeARRAY can still reason
#: about the index expression (Theorems 2-4 cover only +/-/copy chains).
ARRAY_TRANSPARENT_OPS = frozenset({Opcode.MOV, Opcode.ADD32, Opcode.SUB32})

#: Opcodes that read only the low 32 (or fewer) bits of a VALUE operand.
_LOW_ONLY_OPS = frozenset(
    {
        Opcode.EXTEND8,
        Opcode.EXTEND16,
        Opcode.EXTEND32,
        Opcode.ZEXT8,
        Opcode.ZEXT16,
        Opcode.ZEXT32,
        Opcode.JUST_EXTENDED,
        Opcode.TRUNC32,
        Opcode.SHR32,  # lowered to a sign-extracting field op (IA64 extr)
        Opcode.USHR32,  # lowered to an unsigned field extract
        Opcode.CMP32,  # both targets have 32-bit compares
    }
)

#: Opcodes that need the true (canonical) value of a narrow VALUE operand.
_REQUIRING_OPS = frozenset(
    {
        Opcode.DIV32,  # machine divide consumes full registers
        Opcode.REM32,
        Opcode.I2D,  # conversion consumes the full register
    }
)

#: Bitwise opcodes: canonicality is closed under them (the upper bits of
#: canonical operands are sign copies, and bitwise ops preserve that).
BITWISE_OPS = frozenset({Opcode.AND32, Opcode.OR32, Opcode.XOR32, Opcode.NOT32})

ConstOracle = Callable[[Instr, int], int | float | None]
"""Looks up the constant value of operand ``index`` of an instruction,
or ``None`` when unknown.  Analyses supply an implementation backed by
UD chains; ``no_consts`` is the trivial oracle."""


def no_consts(_instr: Instr, _index: int) -> int | float | None:
    """Const oracle that knows nothing."""
    return None


def classify_use(instr: Instr, index: int, traits: MachineTraits) -> UseKind:
    """Classify how ``instr`` uses its ``index``-th source operand."""
    src = instr.srcs[index]
    if not src.type.is_narrow_int:
        return UseKind.IRRELEVANT

    role = instr.role_of(index)
    if role is Role.SHIFT_AMOUNT or role is Role.CONDITION:
        return UseKind.IGNORES_HIGH
    if role is Role.ARRAY_INDEX:
        return UseKind.ARRAY_INDEX
    if role is Role.ARRAY_REF:
        return UseKind.IRRELEVANT
    if role is Role.STORE_VALUE:
        # Stores write the low ``elem`` bits; upper register bits never
        # reach memory for narrow elements.
        elem = instr.elem
        if elem is not None and elem.bits <= 32:
            return UseKind.IGNORES_HIGH
        return UseKind.REQUIRES
    if role is Role.LENGTH:
        # Array allocation is a runtime call; the ABI wants a canonical
        # length.
        return UseKind.REQUIRES
    if role is Role.ARG:
        if instr.opcode is Opcode.SINK:
            return UseKind.REQUIRES
        return (
            UseKind.REQUIRES if traits.abi_canonical_args else UseKind.IGNORES_HIGH
        )
    if role is Role.RET_VALUE:
        return (
            UseKind.REQUIRES if traits.abi_canonical_ret else UseKind.IGNORES_HIGH
        )

    # Role.VALUE:
    opcode = instr.opcode
    if opcode in _LOW_ONLY_OPS:
        return UseKind.IGNORES_HIGH
    if opcode in _PROPAGATING_OPS:
        return UseKind.PROPAGATES
    if opcode in _REQUIRING_OPS:
        return UseKind.REQUIRES
    # A narrow register consumed by a 64-bit or float instruction should
    # not appear in converted code (width changes go through extends);
    # be conservative if it does.
    return UseKind.REQUIRES


def _const_fits_bits(value: int) -> int:
    """Narrowest of 8/16/32 whose signed range contains ``value``."""
    if -(1 << 7) <= value < (1 << 7):
        return 8
    if -(1 << 15) <= value < (1 << 15):
        return 16
    return 32


def canonical_bits(
    instr: Instr,
    traits: MachineTraits,
    const_of: ConstOracle = no_consts,
) -> int | None:
    """AnalyzeDEF Case 1: guaranteed canonical width of the destination.

    Returns the narrowest ``w`` in {8, 16, 32} such that the destination
    register always equals the ``w``-bit sign extension of itself, or
    ``None`` when no such guarantee exists.  A guarantee at width ``w``
    implies the guarantee at any wider width.
    """
    opcode = instr.opcode
    if opcode is Opcode.EXTEND8:
        return 8
    if opcode is Opcode.EXTEND16:
        return 16
    if opcode in (Opcode.EXTEND32, Opcode.JUST_EXTENDED, Opcode.D2I,
                  Opcode.SHR32, Opcode.ARRAYLEN):
        return 32
    if opcode is Opcode.ZEXT8:
        return 16  # value in [0, 255]
    if opcode in (Opcode.ZEXT16, Opcode.USHR32):
        if opcode is Opcode.ZEXT16:
            return 32  # value in [0, 65535]
        amount = const_of(instr, 1)
        if isinstance(amount, int) and (amount & 31) > 0:
            return 32  # logical shift by >0 clears bit 31
        return None
    if opcode in (Opcode.CMP32, Opcode.CMP64, Opcode.CMPF):
        return 8  # 0 or 1
    if opcode is Opcode.CONST:
        if instr.elem in (ScalarType.I64, ScalarType.F64, ScalarType.REF):
            return None
        if isinstance(instr.imm, int):
            # Constants are materialized canonically at their fit width.
            return _const_fits_bits(instr.imm)
        return None
    if opcode is Opcode.CALL:
        dest = instr.dest
        if dest is not None and dest.type.is_narrow_int and traits.abi_canonical_ret:
            return min(32, dest.type.bits) if dest.type.signed else 32
        return None
    if opcode in (Opcode.ALOAD, Opcode.GLOAD):
        elem = instr.elem
        if elem is None or not elem.is_narrow_int:
            return None
        ext = traits.load_extension(elem)
        if ext is LoadExt.SIGN:
            return elem.bits if elem.signed else 32
        # Zero-extended load: values of width < 32 land in the
        # non-negative canonical range; 32-bit values do not.
        if elem.bits < 32:
            return 32 if elem.bits == 16 else 16
        return None
    if opcode is Opcode.AND32:
        for operand in (0, 1):
            value = const_of(instr, operand)
            if isinstance(value, int) and 0 <= value <= INT32_MAX:
                if value <= 0x7F:
                    return 8
                if value <= 0x7FFF:
                    return 16
                return 32
        return None
    return None


def upper32_zero(
    instr: Instr,
    traits: MachineTraits,
    const_of: ConstOracle = no_consts,
) -> bool:
    """Are the upper 32 bits of the destination guaranteed zero?

    This is the precondition of Theorems 1 and 3 ("the upper 32 bits of
    *i* are initialized to zero") and holds for zero-extending loads
    (IA64), unsigned shifts, compare results, array lengths, the dummy
    ``just_extended`` marker (a bounds-checked index is in
    ``[0, maxlen)``), and non-negative 32-bit constants.
    """
    opcode = instr.opcode
    if opcode in (Opcode.ZEXT8, Opcode.ZEXT16, Opcode.ZEXT32, Opcode.USHR32,
                  Opcode.CMP32, Opcode.CMP64, Opcode.CMPF, Opcode.ARRAYLEN,
                  Opcode.JUST_EXTENDED):
        return True
    if opcode is Opcode.CONST:
        return isinstance(instr.imm, int) and 0 <= instr.imm <= INT32_MAX
    if opcode in (Opcode.ALOAD, Opcode.GLOAD):
        elem = instr.elem
        if elem is None or not elem.is_narrow_int:
            return False
        return traits.load_extension(elem) is LoadExt.ZERO
    if opcode is Opcode.AND32:
        for operand in (0, 1):
            value = const_of(instr, operand)
            if isinstance(value, int) and 0 <= value <= INT32_MAX:
                return True
        return False
    return False


def propagates_canonical(opcode: Opcode) -> bool:
    """AnalyzeDEF Case 2: destination canonical iff all narrow sources are.

    Copies trivially propagate; bitwise operations do too because the
    upper bits of canonical operands are all-zeros or all-ones sign
    copies, which AND/OR/XOR/NOT map to the sign copy of the result.
    """
    return opcode is Opcode.MOV or opcode in BITWISE_OPS


def propagates_upper_zero(instr: Instr, index_known_zero: list[bool]) -> bool:
    """Upper-32-zero propagation through copies and bitwise ops.

    ``index_known_zero[i]`` states whether source ``i`` is known
    upper-32-zero; returns whether the destination is then guaranteed
    upper-32-zero.
    """
    opcode = instr.opcode
    if opcode is Opcode.MOV:
        return bool(index_known_zero and index_known_zero[0])
    if opcode is Opcode.AND32:
        return any(index_known_zero)
    if opcode in (Opcode.OR32, Opcode.XOR32):
        return len(index_known_zero) == 2 and all(index_known_zero)
    return False


def use_read_bits(instr: Instr, index: int) -> int:
    """How many low bits an IGNORES_HIGH use actually reads.

    Needed for 8- and 16-bit extension elimination ("8-bit and 16-bit
    sign extensions are also eliminated based on the same algorithm"):
    an ``extend8`` is required by a use that reads bits above bit 7,
    even when that use ignores the upper 32 bits.
    """
    role = instr.role_of(index)
    if role is Role.SHIFT_AMOUNT:
        return 6
    if role is Role.STORE_VALUE and instr.elem is not None:
        return min(instr.elem.bits, 32)
    opcode = instr.opcode
    if opcode in (Opcode.EXTEND8, Opcode.ZEXT8):
        return 8
    if opcode in (Opcode.EXTEND16, Opcode.ZEXT16):
        return 16
    return 32


def requires_canonical_anywhere(instr: Instr, traits: MachineTraits) -> bool:
    """True when some narrow operand of ``instr`` REQUIRES a canonical
    value (used by gen-use conversion and by insertion)."""
    for index in range(len(instr.srcs)):
        if classify_use(instr, index, traits) is UseKind.REQUIRES:
            return True
    return False
