"""IR well-formedness checks.

The verifier catches structural mistakes early: blocks without
terminators, branches to unknown labels, operand-count mismatches,
type mismatches on extensions, uses of undefined registers (checked
flow-insensitively: a register must have at least one definition or be
a parameter), and calls with arity mismatches.
"""

from __future__ import annotations

from .function import Function, Program
from .instruction import Instr
from .opcodes import OP_INFO, Opcode
from .types import ScalarType


class VerificationError(Exception):
    """Raised when an IR function violates a structural invariant."""


def verify_function(func: Function, program: Program | None = None) -> None:
    labels = {block.label for block in func.blocks}
    if not func.blocks:
        raise VerificationError(f"{func.name}: no blocks")

    defined = {p.name for p in func.params}
    for _, instr in func.instructions():
        if instr.dest is not None:
            defined.add(instr.dest.name)

    for block in func.blocks:
        if not block.instrs:
            raise VerificationError(f"{func.name}/{block.label}: empty block")
        for position, instr in enumerate(block.instrs):
            _verify_instr(func, block.label, instr, labels, defined, program)
            last = position == len(block.instrs) - 1
            if instr.is_terminator != last:
                raise VerificationError(
                    f"{func.name}/{block.label}: terminator misplaced at "
                    f"position {position}: {instr}"
                )


def verify_program(program: Program) -> None:
    for func in program.functions.values():
        verify_function(func, program)


def _verify_instr(
    func: Function,
    label: str,
    instr: Instr,
    labels: set[str],
    defined: set[str],
    program: Program | None,
) -> None:
    where = f"{func.name}/{label}: {instr}"
    info = OP_INFO.get(instr.opcode)
    if info is None:
        raise VerificationError(f"{where}: unknown opcode")

    if info.n_srcs >= 0 and len(instr.srcs) != info.n_srcs:
        raise VerificationError(
            f"{where}: expected {info.n_srcs} operands, got {len(instr.srcs)}"
        )
    if info.has_dest and instr.dest is None and instr.opcode is not Opcode.CALL:
        raise VerificationError(f"{where}: missing destination")
    if not info.has_dest and instr.dest is not None:
        raise VerificationError(f"{where}: unexpected destination")

    for src in instr.srcs:
        if src.name not in defined:
            raise VerificationError(f"{where}: use of undefined register {src}")

    if instr.opcode is Opcode.CONST and instr.imm is None:
        raise VerificationError(f"{where}: CONST without immediate")
    if instr.opcode in (Opcode.CMP32, Opcode.CMP64, Opcode.CMPF, Opcode.BR):
        if instr.opcode is not Opcode.BR and instr.cond is None:
            raise VerificationError(f"{where}: compare without condition")
    if instr.opcode in (Opcode.ALOAD, Opcode.ASTORE, Opcode.NEWARRAY):
        if instr.elem is None:
            raise VerificationError(f"{where}: array op without element type")
    if instr.opcode in (Opcode.ALOAD, Opcode.ASTORE, Opcode.ARRAYLEN):
        if instr.srcs and instr.srcs[0].type is not ScalarType.REF:
            raise VerificationError(f"{where}: array operand must be REF")
    if instr.opcode in (Opcode.GLOAD, Opcode.GSTORE):
        if instr.gname is None:
            raise VerificationError(f"{where}: global op without name")
        if program is not None and instr.gname not in program.globals:
            raise VerificationError(f"{where}: unknown global ${instr.gname}")

    if instr.opcode is Opcode.BR and len(instr.targets) != 2:
        raise VerificationError(f"{where}: BR needs two targets")
    if instr.opcode is Opcode.JMP and len(instr.targets) != 1:
        raise VerificationError(f"{where}: JMP needs one target")
    for target in instr.targets:
        if target not in labels:
            raise VerificationError(f"{where}: unknown target {target}")

    if instr.opcode is Opcode.CALL:
        if instr.callee is None:
            raise VerificationError(f"{where}: CALL without callee")
        if program is not None:
            callee = program.functions.get(instr.callee)
            if callee is None:
                raise VerificationError(f"{where}: unknown callee @{instr.callee}")
            if len(instr.srcs) != len(callee.sig.params):
                raise VerificationError(
                    f"{where}: arity mismatch calling @{instr.callee}: "
                    f"{len(instr.srcs)} args vs {len(callee.sig.params)} params"
                )

    if instr.opcode is Opcode.RET and len(instr.srcs) > 1:
        raise VerificationError(f"{where}: RET takes at most one value")
