"""Deep-cloning of IR programs.

The harness compiles the same source program under a dozen variant
configurations; cloning gives each compilation an isolated copy.  Cloned
instructions receive fresh uids (side tables never alias across runs).
"""

from __future__ import annotations

from .block import Block
from .function import Function, Program
from .instruction import Global


def clone_function(func: Function) -> Function:
    clone = Function(func.name, func.sig)
    clone.params = list(func.params)
    clone._reg_names = set(func._reg_names)
    clone._temp_counter = func._temp_counter
    clone._label_counter = func._label_counter
    for block in func.blocks:
        new_block = Block(block.label)
        new_block.freq = block.freq
        new_block.loop_depth = block.loop_depth
        for instr in block.instrs:
            new_block.append(instr.copy())
        clone.add_block(new_block)
    return clone


def clone_program(program: Program) -> Program:
    clone = Program(program.name)
    for glob in program.globals.values():
        clone.add_global(glob.name, glob.type, glob.initial)
    for func in program.functions.values():
        clone.add_function(clone_function(func))
    return clone
