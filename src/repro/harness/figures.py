"""Text renderers for the paper's figures.

Figures 11/12 plot the Table-1/2 percentages as series; Figures 13/14
plot run-time improvement over the baseline.  We render both as aligned
text series plus an ASCII bar chart (the repository has no plotting
dependency, and the numbers are the deliverable).
"""

from __future__ import annotations

from .runner import WorkloadResults
from .tables import ROW_ORDER

#: Variants plotted in the performance figures.
PERF_ROWS = [
    "gen use",
    "first algorithm (bwd flow)",
    "insert, order",
    "array, order",
    "all, using PDE",
    "new algorithm (all)",
]


def format_percent_figure(results: list[WorkloadResults], title: str) -> str:
    """Figures 11/12: residual dynamic extensions as % of baseline."""
    lines = [title, "=" * len(title), ""]
    names = [wl.workload.display_name for wl in results]
    width = max(12, *(len(n) for n in names)) + 2
    header = f"{'variant':28s}" + "".join(f"{n:>{width}s}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for row in ROW_ORDER:
        if row == "baseline" or not all(row in wl.cells for wl in results):
            continue
        line = f"{row:28s}"
        for wl in results:
            pct = wl.cells[row].percent_of(wl.baseline)
            line += f"{pct:>{width - 1}.2f}%"
        lines.append(line)
    lines.append("")
    lines.append(_bars(results, "new algorithm (all)"))
    return "\n".join(lines)


def format_performance_figure(results: list[WorkloadResults],
                              title: str) -> str:
    """Figures 13/14: modelled run-time improvement over baseline (%)."""
    lines = [title, "=" * len(title), ""]
    names = [wl.workload.display_name for wl in results]
    width = max(12, *(len(n) for n in names)) + 2
    header = f"{'variant':28s}" + "".join(f"{n:>{width}s}" for n in names)
    header += f"{'average':>10s}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in PERF_ROWS:
        if not all(row in wl.cells for wl in results):
            continue
        line = f"{row:28s}"
        improvements = []
        for wl in results:
            improvement = wl.cells[row].cycles.improvement_over(
                wl.baseline.cycles
            )
            improvements.append(improvement)
            line += f"{improvement:>{width - 1}.2f}%"
        line += f"{sum(improvements) / len(improvements):>9.2f}%"
        lines.append(line)
    lines.append("")
    lines.append(_improvement_bars(results, "new algorithm (all)"))
    return "\n".join(lines)


def _bars(results: list[WorkloadResults], variant: str,
          width: int = 50) -> str:
    lines = [f"residual extensions, {variant} (% of baseline):"]
    for wl in results:
        pct = wl.cells[variant].percent_of(wl.baseline)
        bar = "#" * max(0, min(width, round(pct / 100 * width)))
        lines.append(f"  {wl.workload.display_name:14s} {pct:7.2f}% |{bar}")
    return "\n".join(lines)


def _improvement_bars(results: list[WorkloadResults], variant: str,
                      width: int = 50, scale: float = 30.0) -> str:
    lines = [f"run-time improvement, {variant} (% over baseline, "
             f"bar full scale = {scale:.0f}%):"]
    for wl in results:
        improvement = wl.cells[variant].cycles.improvement_over(
            wl.baseline.cycles
        )
        bar = "#" * max(0, min(width, round(improvement / scale * width)))
        lines.append(
            f"  {wl.workload.display_name:14s} {improvement:7.2f}% |{bar}"
        )
    return "\n".join(lines)
