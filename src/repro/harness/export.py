"""Machine-readable export of experiment results."""

from __future__ import annotations

import json
from typing import Any

from .runner import WorkloadResults


def results_to_dict(results: list[WorkloadResults]) -> dict[str, Any]:
    """All measurements as plain data, suitable for JSON/plotting."""
    payload: dict[str, Any] = {"workloads": []}
    for result in results:
        baseline = result.baseline
        entry: dict[str, Any] = {
            "name": result.workload.name,
            "display_name": result.workload.display_name,
            "suite": result.workload.suite,
            "description": result.workload.description,
            "gold_checksum": f"{result.gold_checksum:#018x}",
            "variants": {},
        }
        for name, cell in result.cells.items():
            entry["variants"][name] = {
                "dyn_extend32": cell.dyn_extend32,
                "dyn_extend16": cell.dyn_extend16,
                "dyn_extend8": cell.dyn_extend8,
                "static_extends": cell.static_extends,
                "percent_of_baseline": round(cell.percent_of(baseline), 4),
                "cycles": cell.cycles.total,
                "cycle_improvement_percent": round(
                    cell.cycles.improvement_over(baseline.cycles), 4
                ),
                "steps": cell.steps,
                "compile_seconds": cell.timing.as_dict(),
            }
            if cell.telemetry is not None:
                entry["variants"][name]["telemetry"] = cell.telemetry
        payload["workloads"].append(entry)
    return payload


def export_json(results: list[WorkloadResults], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(results_to_dict(results), handle, indent=2, sort_keys=True)
        handle.write("\n")


def strip_volatile(payload: dict[str, Any]) -> dict[str, Any]:
    """A copy of an exported payload without run-to-run noise.

    Everything in the export is a deterministic function of the
    workloads and variants except wall-clock compile timing (and, when
    present, telemetry documents, whose span timestamps vary).  Tests
    and the CI warm-cache check compare exports through this filter:
    two runs agree exactly iff they produced the same code and the
    same measurements.
    """
    clean = json.loads(json.dumps(payload))
    for workload in clean.get("workloads", []):
        for cell in workload.get("variants", {}).values():
            cell.pop("compile_seconds", None)
            cell.pop("telemetry", None)
    return clean
