"""The paper's checkable claims, encoded.

Each claim is a predicate over a suite's :class:`WorkloadResults`; the
checker returns a verdict list that EXPERIMENTS.md and the benchmark
suite use to assert that the reproduction still reproduces.  Claims are
*shape* claims (orderings, signs, monotonicity) rather than absolute
numbers, because the substrate is a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .runner import WorkloadResults


@dataclass(frozen=True)
class Verdict:
    claim: str
    source: str  # where the paper states it
    holds: bool
    detail: str


def _avg_percent(results: list[WorkloadResults], variant: str) -> float:
    values = [r.cells[variant].percent_of(r.baseline) for r in results]
    return sum(values) / len(values)


def _claim(claims, name, source, predicate, detail):
    holds = bool(predicate)
    claims.append(Verdict(claim=name, source=source, holds=holds,
                          detail=detail))


def check_claims(results: list[WorkloadResults]) -> list[Verdict]:
    """Evaluate every encoded claim against one suite's results."""
    claims: list[Verdict] = []
    avg = lambda v: _avg_percent(results, v)  # noqa: E731

    _claim(
        claims,
        "the majority of sign extensions are eliminated",
        "abstract / Section 6",
        avg("new algorithm (all)") < 50.0,
        f"average residual {avg('new algorithm (all)'):.2f}% of baseline",
    )
    _claim(
        claims,
        "the full algorithm eliminates 71.52%-99.999% per benchmark",
        "Section 4.1",
        all(
            r.cells["new algorithm (all)"].percent_of(r.baseline) < 28.48
            or r.baseline.dyn_extend32 == 0
            for r in results
        ),
        "per-benchmark residuals all below 28.48%",
    )
    _claim(
        claims,
        "array-index elimination is most effective",
        "Section 4.1: 'most effective for all the benchmark programs'",
        avg("array") <= avg("basic ud/du") + 1e-9,
        f"array {avg('array'):.2f}% vs basic ud/du "
        f"{avg('basic ud/du'):.2f}%",
    )
    _claim(
        claims,
        "insertion + order determination improves on basic ud/du",
        "Section 4.1, observation 2 (the combination is what pays; "
        "in the paper insertion alone is ineffective)",
        avg("insert, order") <= avg("basic ud/du") + 1e-9,
        f"insert+order {avg('insert, order'):.2f}% vs basic ud/du "
        f"{avg('basic ud/du'):.2f}% (insert alone "
        f"{avg('insert'):.2f}%)",
    )
    _claim(
        claims,
        "combining array/insert with order enhances elimination",
        "Section 4.1, observation 1",
        avg("new algorithm (all)") <= avg("array") + 1e-9,
        f"all {avg('new algorithm (all)'):.2f}% vs array "
        f"{avg('array'):.2f}%",
    )
    _claim(
        claims,
        "simple insertion is at least as good as the PDE variant",
        "Sections 2.1 / 5",
        avg("new algorithm (all)") <= avg("all, using PDE") + 1e-9,
        f"simple {avg('new algorithm (all)'):.2f}% vs PDE "
        f"{avg('all, using PDE'):.2f}%",
    )
    _claim(
        claims,
        "the new algorithm beats the first algorithm everywhere",
        "Section 4.1",
        all(
            r.cells["new algorithm (all)"].dyn_extend32
            <= r.cells["first algorithm (bwd flow)"].dyn_extend32
            for r in results
        ),
        "per-benchmark: all <= first algorithm",
    )
    _claim(
        claims,
        "elimination improves modelled run time on every benchmark",
        "Section 4.1 / Figures 13-14",
        all(
            r.cells["new algorithm (all)"].cycles.improvement_over(
                r.baseline.cycles
            ) >= 0.0
            for r in results
        ),
        "non-negative improvement everywhere",
    )
    return claims


def format_claims(results: list[WorkloadResults], title: str) -> str:
    lines = [title, "=" * len(title), ""]
    for verdict in check_claims(results):
        status = "REPRODUCED" if verdict.holds else "NOT REPRODUCED"
        lines.append(f"[{status:>14s}] {verdict.claim}")
        lines.append(f"{'':17s}paper: {verdict.source}")
        lines.append(f"{'':17s}measured: {verdict.detail}")
    return "\n".join(lines)
