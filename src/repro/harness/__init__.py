"""Experiment harness: regenerate the paper's tables and figures."""

from .claims import Verdict, check_claims, format_claims
from .export import export_json, results_to_dict, strip_volatile
from .figures import format_percent_figure, format_performance_figure
from .runner import (
    CellResult,
    SoundnessError,
    WorkloadResults,
    measure_workload,
    run_suite,
    run_workload,
)
from .tables import ROW_ORDER, format_dynamic_count_table, format_timing_table

__all__ = [
    "CellResult",
    "ROW_ORDER",
    "SoundnessError",
    "Verdict",
    "WorkloadResults",
    "check_claims",
    "export_json",
    "format_dynamic_count_table",
    "format_percent_figure",
    "format_performance_figure",
    "format_claims",
    "format_timing_table",
    "measure_workload",
    "results_to_dict",
    "run_suite",
    "run_workload",
    "strip_volatile",
]
