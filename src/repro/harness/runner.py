"""Experiment runner: compile + execute each workload under each variant.

For every (workload, variant) cell the runner:

1. compiles the workload's 32-bit-form program under the variant config
   (profiles for order determination come from one profiling run of the
   unconverted program, as the paper's mixed-mode interpreter provides);
2. executes the compiled program on the machine-faithful interpreter;
3. checks the observable behaviour (checksums, return value) against the
   unoptimized gold run — any unsound elimination fails loudly;
4. records the dynamic count of remaining 32-bit sign extensions
   (Tables 1/2), modelled cycles (Figures 13/14), and compile timing
   (Table 3).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core import VARIANTS
from ..core.config import SignExtConfig
from ..driver import BatchCompiler, CompileJob, fingerprint_program
from ..driver.fingerprint import fingerprint_config
from ..interp import DEFAULT_ENGINE, execute
from ..interp.profiler import collect_branch_profiles
from ..machine.costs import CycleReport, count_cycles
from ..machine.model import IA64, MachineTraits
from ..opt.pass_manager import BUCKET_KEYS, Timing
from ..workloads import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..perf import PerfRecorder


class SoundnessError(AssertionError):
    """An optimization variant changed observable behaviour."""


@dataclass
class CellResult:
    workload: str
    variant: str
    dyn_extend32: int
    dyn_extend16: int
    dyn_extend8: int
    static_extends: int
    cycles: CycleReport
    timing: Timing
    steps: int
    #: full telemetry document for this (workload, variant) cell; only
    #: populated when the runner was asked to collect telemetry
    telemetry: dict | None = None

    def percent_of(self, baseline: "CellResult") -> float:
        if baseline.dyn_extend32 == 0:
            return 100.0 if self.dyn_extend32 == 0 else float("inf")
        return 100.0 * self.dyn_extend32 / baseline.dyn_extend32


@dataclass
class WorkloadResults:
    workload: Workload
    gold_checksum: int
    cells: dict[str, CellResult] = field(default_factory=dict)

    @property
    def baseline(self) -> CellResult:
        return self.cells["baseline"]


def measure_workload(
    workload: Workload,
    variants: dict[str, SignExtConfig] | None = None,
    *,
    traits: MachineTraits = IA64,
    fuel: int = 100_000_000,
    collect_telemetry: bool = False,
    driver: BatchCompiler | None = None,
    engine: str = DEFAULT_ENGINE,
    recorder: "PerfRecorder | None" = None,
    repeat_index: int = 0,
    profile_dir: str | None = None,
) -> WorkloadResults:
    """Run one workload under every variant; verify soundness throughout.

    ``engine`` selects the execution engine for the gold, profiling and
    per-cell runs (``"closure"``/``"reference"``); ``"both"`` runs every
    execution on both engines and fails on any divergence — the
    engine-parity cross-check used by CI.

    All variant compilations go through a :class:`BatchCompiler`: pass
    ``driver`` to share a compile cache and process pool across
    workloads (``repro.api.bench`` does), or leave it ``None`` for a
    private serial driver — the results are identical either way, the
    driver only changes where and whether the compile work happens.

    With ``collect_telemetry=True`` every cell carries its full
    telemetry document (compile-time spans, decision log, and runtime
    metrics), so two benchmark runs become diffable down to individual
    elimination decisions.  Off by default: the paper's Table 3 timing
    numbers must not pay for observability they did not ask for.

    A ``recorder`` (:class:`repro.perf.PerfRecorder`) turns every cell
    into one perf-history record: compile-phase wall times from the
    timing buckets, the measured ``execute`` phase, the deterministic
    extension/step counts, and — when telemetry is collected — the
    cell's counter families.  ``repeat_index`` tags the record when a
    caller runs the same grid several times for min-of-repeats.

    ``profile_dir`` turns every cell run into a profiled execution:
    the interpreter collects per-block entry counts (zero extra work in
    either engine — see :mod:`repro.profile.builder`) and one profile
    artifact per cell lands under the directory, named
    ``<workload>__<variant>__<machine>.profile.json``.
    """
    variants = variants if variants is not None else VARIANTS
    source = workload.program()

    gold = execute(source, engine=engine, mode="ideal", fuel=fuel)
    profiles = collect_branch_profiles(source, fuel=fuel, engine=engine)

    # One digest serves all variant cells of this workload.
    source_fp = fingerprint_program(source)
    jobs = [
        CompileJob(
            label=f"{workload.name}/{name}",
            program=source,
            config=config.with_traits(traits),
            profiles=profiles,
            collect_telemetry=collect_telemetry,
            program_fingerprint=source_fp,
        )
        for name, config in variants.items()
    ]
    if driver is None:
        with BatchCompiler() as private_driver:
            compiled_cells = private_driver.compile_batch(jobs)
    else:
        compiled_cells = driver.compile_batch(jobs)

    results = WorkloadResults(workload=workload, gold_checksum=gold.checksum)
    for (name, config), compiled in zip(variants.items(), compiled_cells):
        telemetry = compiled.telemetry
        metrics = telemetry.metrics if telemetry is not None else None
        execute_start = time.perf_counter()
        run = execute(compiled.program, engine=engine, traits=traits,
                      fuel=fuel, metrics=metrics,
                      collect_profile=profile_dir is not None)
        execute_seconds = time.perf_counter() - execute_start
        if run.observable() != gold.observable():
            raise SoundnessError(
                f"{workload.name} / {name}: observable behaviour changed "
                f"(gold {gold.observable()} vs {run.observable()})"
            )
        cell = CellResult(
            workload=workload.name,
            variant=name,
            dyn_extend32=run.extend_counts.get(32, 0),
            dyn_extend16=run.extend_counts.get(16, 0),
            dyn_extend8=run.extend_counts.get(8, 0),
            static_extends=compiled.static_extend_count,
            cycles=count_cycles(compiled.program, run, traits),
            timing=compiled.timing,
            steps=run.steps,
            telemetry=(telemetry.to_dict() if telemetry is not None
                       else None),
        )
        results.cells[name] = cell
        if profile_dir is not None:
            from ..profile import artifact_path, build_profile, write_profile

            built = build_profile(
                compiled.program, run, traits=traits, engine=engine,
                variant=name, workload=workload.name,
                decisions=(telemetry.decisions if telemetry is not None
                           else None),
            )
            write_profile(built, artifact_path(
                profile_dir, workload.name, name, traits.name))
        if recorder is not None:
            _record_cell(recorder, cell, config=config.with_traits(traits),
                         engine=engine, fuel=fuel,
                         execute_seconds=execute_seconds,
                         metrics=metrics, repeat_index=repeat_index)
    return results


def _record_cell(recorder: "PerfRecorder", cell: CellResult, *,
                 config: SignExtConfig, engine: str, fuel: int,
                 execute_seconds: float, metrics,
                 repeat_index: int) -> None:
    """Emit one perf-history record for a measured cell."""
    phases = {
        key: cell.timing.seconds.get(bucket, 0.0)
        for bucket, key in BUCKET_KEYS.items()
    }
    phases["execute"] = execute_seconds
    counters: dict[str, int] = {}
    if metrics is not None:
        counters = dict(metrics.as_dict()["counters"])
    recorder.record_cell(
        workload=cell.workload,
        variant=cell.variant,
        engine=engine,
        machine=config.traits.name,
        fuel=fuel,
        repeat=repeat_index,
        phases=phases,
        measures={
            "dyn_extend32": cell.dyn_extend32,
            "dyn_extend16": cell.dyn_extend16,
            "dyn_extend8": cell.dyn_extend8,
            "static_extends": cell.static_extends,
            "steps": cell.steps,
            "cycles": cell.cycles.total,
            "extend_cycles": cell.cycles.extend_cycles,
        },
        counters=counters,
        config_fingerprint=fingerprint_config(config),
    )


def run_suite(
    workloads: list[Workload],
    variants: dict[str, SignExtConfig] | None = None,
    *,
    traits: MachineTraits = IA64,
    fuel: int = 100_000_000,
    collect_telemetry: bool = False,
    driver: BatchCompiler | None = None,
    engine: str = DEFAULT_ENGINE,
    recorder: "PerfRecorder | None" = None,
    repeat_index: int = 0,
    profile_dir: str | None = None,
) -> list[WorkloadResults]:
    """Measure every workload, sharing one driver across the grid."""
    if driver is None:
        with BatchCompiler() as private_driver:
            return run_suite(workloads, variants, traits=traits, fuel=fuel,
                             collect_telemetry=collect_telemetry,
                             driver=private_driver, engine=engine,
                             recorder=recorder, repeat_index=repeat_index,
                             profile_dir=profile_dir)
    return [
        measure_workload(w, variants, traits=traits, fuel=fuel,
                         collect_telemetry=collect_telemetry,
                         driver=driver, engine=engine, recorder=recorder,
                         repeat_index=repeat_index, profile_dir=profile_dir)
        for w in workloads
    ]


def run_workload(
    workload: Workload,
    variants: dict[str, SignExtConfig] | None = None,
    *,
    traits: MachineTraits = IA64,
    fuel: int = 100_000_000,
    collect_telemetry: bool = False,
) -> WorkloadResults:
    """Deprecated alias of :func:`measure_workload`.

    Prefer :func:`repro.api.bench` (whole grids) or
    :func:`measure_workload` (one workload).
    """
    warnings.warn(
        "run_workload() is deprecated; use repro.api.bench() or "
        "repro.harness.measure_workload()",
        DeprecationWarning,
        stacklevel=2,
    )
    return measure_workload(workload, variants, traits=traits, fuel=fuel,
                            collect_telemetry=collect_telemetry)
