"""Experiment runner: compile + execute each workload under each variant.

For every (workload, variant) cell the runner:

1. compiles the workload's 32-bit-form program under the variant config
   (profiles for order determination come from one profiling run of the
   unconverted program, as the paper's mixed-mode interpreter provides);
2. executes the compiled program on the machine-faithful interpreter;
3. checks the observable behaviour (checksums, return value) against the
   unoptimized gold run — any unsound elimination fails loudly;
4. records the dynamic count of remaining 32-bit sign extensions
   (Tables 1/2), modelled cycles (Figures 13/14), and compile timing
   (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.frequency import BranchProfile
from ..core import VARIANTS, compile_program
from ..core.config import SignExtConfig
from ..interp import Interpreter
from ..interp.profiler import collect_branch_profiles
from ..machine.costs import CycleReport, count_cycles
from ..machine.model import IA64, MachineTraits
from ..opt.pass_manager import Timing
from ..telemetry import Telemetry
from ..workloads import Workload


class SoundnessError(AssertionError):
    """An optimization variant changed observable behaviour."""


@dataclass
class CellResult:
    workload: str
    variant: str
    dyn_extend32: int
    dyn_extend16: int
    dyn_extend8: int
    static_extends: int
    cycles: CycleReport
    timing: Timing
    steps: int
    #: full telemetry document for this (workload, variant) cell; only
    #: populated when the runner was asked to collect telemetry
    telemetry: dict | None = None

    def percent_of(self, baseline: "CellResult") -> float:
        if baseline.dyn_extend32 == 0:
            return 100.0 if self.dyn_extend32 == 0 else float("inf")
        return 100.0 * self.dyn_extend32 / baseline.dyn_extend32


@dataclass
class WorkloadResults:
    workload: Workload
    gold_checksum: int
    cells: dict[str, CellResult] = field(default_factory=dict)

    @property
    def baseline(self) -> CellResult:
        return self.cells["baseline"]


def run_workload(
    workload: Workload,
    variants: dict[str, SignExtConfig] | None = None,
    *,
    traits: MachineTraits = IA64,
    fuel: int = 100_000_000,
    collect_telemetry: bool = False,
) -> WorkloadResults:
    """Run one workload under every variant; verify soundness throughout.

    With ``collect_telemetry=True`` every cell carries its full
    telemetry document (compile-time spans, decision log, and runtime
    metrics), so two benchmark runs become diffable down to individual
    elimination decisions.  Off by default: the paper's Table 3 timing
    numbers must not pay for observability they did not ask for.
    """
    variants = variants if variants is not None else VARIANTS
    source = workload.program()

    gold = Interpreter(source, mode="ideal", fuel=fuel).run()
    profiles = collect_branch_profiles(source, fuel=fuel)

    results = WorkloadResults(workload=workload, gold_checksum=gold.checksum)
    for name, config in variants.items():
        config = config.with_traits(traits)
        telemetry = (Telemetry(label=f"{workload.name}/{name}")
                     if collect_telemetry else None)
        compiled = compile_program(source, config, profiles,
                                   telemetry=telemetry)
        metrics = telemetry.metrics if telemetry is not None else None
        run = Interpreter(compiled.program, traits=traits, fuel=fuel,
                          metrics=metrics).run()
        if run.observable() != gold.observable():
            raise SoundnessError(
                f"{workload.name} / {name}: observable behaviour changed "
                f"(gold {gold.observable()} vs {run.observable()})"
            )
        results.cells[name] = CellResult(
            workload=workload.name,
            variant=name,
            dyn_extend32=run.extend_counts.get(32, 0),
            dyn_extend16=run.extend_counts.get(16, 0),
            dyn_extend8=run.extend_counts.get(8, 0),
            static_extends=compiled.static_extend_count,
            cycles=count_cycles(compiled.program, run, traits),
            timing=compiled.timing,
            steps=run.steps,
            telemetry=(telemetry.to_dict() if telemetry is not None
                       else None),
        )
    return results


def run_suite(
    workloads: list[Workload],
    variants: dict[str, SignExtConfig] | None = None,
    *,
    traits: MachineTraits = IA64,
    collect_telemetry: bool = False,
) -> list[WorkloadResults]:
    return [
        run_workload(w, variants, traits=traits,
                     collect_telemetry=collect_telemetry)
        for w in workloads
    ]
