"""Text renderers for the paper's tables.

Tables 1 and 2 print, per benchmark and per variant, the dynamic count
of remaining 32-bit sign extensions and its percentage of the baseline,
with the paper's improved (o) / worsened (x) marks relative to the row
above's reference ordering (improved = lower than the previous
non-reference row).
"""

from __future__ import annotations

from ..core.config import VARIANTS
from .runner import WorkloadResults

#: Variant order as printed in the paper's tables.
ROW_ORDER = list(VARIANTS)


def _marks(results: list[WorkloadResults]) -> dict[tuple[str, str], str]:
    """o = improved vs the previous row, x = worsened (the paper's
    white/black circles)."""
    marks: dict[tuple[str, str], str] = {}
    for wl in results:
        previous: int | None = None
        for row in ROW_ORDER:
            cell = wl.cells.get(row)
            if cell is None:
                continue
            if row == "baseline":
                marks[(wl.workload.name, row)] = " "
            elif previous is not None:
                if cell.dyn_extend32 <= previous:
                    marks[(wl.workload.name, row)] = "o"
                else:
                    marks[(wl.workload.name, row)] = "x"
            previous = cell.dyn_extend32
    return marks


def format_dynamic_count_table(
    results: list[WorkloadResults],
    title: str,
) -> str:
    """Render a Table-1/2-style dynamic-count table."""
    marks = _marks(results)
    names = [wl.workload.display_name for wl in results]
    width = max(12, *(len(n) for n in names)) + 2

    lines = [title, "=" * len(title), ""]
    header = f"{'variant':28s}" + "".join(f"{n:>{width}s}" for n in names)
    header += f"{'average %':>12s}"
    lines.append(header)
    lines.append("-" * len(header))

    for row in ROW_ORDER:
        if not all(row in wl.cells for wl in results):
            continue
        counts = f"{row:28s}"
        percents = f"{'':28s}"
        percent_values = []
        for wl in results:
            cell = wl.cells[row]
            base = wl.baseline
            pct = cell.percent_of(base)
            percent_values.append(pct)
            mark = marks.get((wl.workload.name, row), " ")
            counts += f"{cell.dyn_extend32:>{width}d}"
            percents += f"{mark} ({pct:.2f}%)".rjust(width)
        average = sum(percent_values) / len(percent_values)
        counts += f"{'':>12s}"
        percents += f"({average:.2f}%)".rjust(12)
        lines.append(counts)
        lines.append(percents)
    return "\n".join(lines)


def format_timing_table(results: list[WorkloadResults],
                        variant: str = "new algorithm (all)") -> str:
    """Render the Table-3-style JIT compilation time breakdown."""
    from ..opt.pass_manager import BUCKET_CHAINS, BUCKET_OTHERS, BUCKET_SIGN_EXT

    title = ("Table 3: Breakdown of JIT compilation time "
             f"(variant: {variant})")
    lines = [title, "=" * len(title), ""]
    header = (f"{'benchmark':14s}{'sign-ext opts':>16s}"
              f"{'UD/DU chains':>16s}{'others':>12s}")
    lines.append(header)
    lines.append("-" * len(header))
    fractions = []
    for wl in results:
        timing = wl.cells[variant].timing
        se = timing.fraction(BUCKET_SIGN_EXT) * 100
        ch = timing.fraction(BUCKET_CHAINS) * 100
        ot = timing.fraction(BUCKET_OTHERS) * 100
        fractions.append((se, ch, ot))
        lines.append(
            f"{wl.workload.display_name:14s}{se:>15.2f}%{ch:>15.2f}%"
            f"{ot:>11.2f}%"
        )
    if fractions:
        avg = [sum(f[i] for f in fractions) / len(fractions) for i in range(3)]
        lines.append(
            f"{'average':14s}{avg[0]:>15.2f}%{avg[1]:>15.2f}%{avg[2]:>11.2f}%"
        )
    return "\n".join(lines)
