"""``repro perf record``: run a fixed bench grid into the history.

A *recording run* executes a small, fixed (workload x variant x engine)
grid ``repeat`` times through the normal harness path —
:func:`repro.harness.measure_workload`, batch driver, soundness check
and all — with a :class:`~repro.perf.recorder.PerfRecorder` attached,
so every cell lands in the history as ``repeat`` records sharing one
``run_id``.  Min-of-repeats happens later, in the compare engine;
recording keeps the raw observations.

The default grid is deliberately small (two paper variants): the point
of a gate is a stable signal run on every PR, not a full Table 1
regeneration — ``--all-variants`` widens it when a PR touches
elimination behaviour itself.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core import VARIANTS
from ..core.config import CompileOptions
from .recorder import PerfRecorder

#: the fixed gate grid's variants: the two ends of the paper's tables
DEFAULT_RECORD_VARIANTS = ("baseline", "new algorithm (all)")

#: the fixed gate grid's workloads: one cheap, one hot-path heavy
DEFAULT_RECORD_WORKLOADS = ("fourier", "huffman")


def record_grid(
    workloads: Sequence[str] = DEFAULT_RECORD_WORKLOADS,
    *,
    engines: Iterable[str] = ("closure",),
    variants: Sequence[str] | None = None,
    options: CompileOptions | None = None,
    repeat: int = 3,
    recorder: PerfRecorder,
) -> dict[str, int]:
    """Run the grid, recording every cell; returns append counts."""
    from ..api import driver_from_options
    from ..workloads import get_workload

    options = options if options is not None else CompileOptions()
    variant_names = tuple(variants) if variants else DEFAULT_RECORD_VARIANTS
    for name in variant_names:
        if name not in VARIANTS:
            raise ValueError(f"unknown variant: {name!r}")
    variant_map = {name: VARIANTS[name] for name in variant_names}
    resolved = [get_workload(name) for name in workloads]

    from ..harness import measure_workload

    with driver_from_options(options) as driver:
        for engine in engines:
            for repeat_index in range(repeat):
                for workload in resolved:
                    measure_workload(
                        workload,
                        variant_map,
                        traits=options.traits(),
                        fuel=options.fuel,
                        driver=driver,
                        engine=engine,
                        recorder=recorder,
                        repeat_index=repeat_index,
                    )
    return {
        "recorded": recorder.recorded,
        "deduplicated": recorder.deduplicated,
        "cells": len(resolved) * len(variant_map) * len(tuple(engines)),
        "repeat": repeat,
    }
