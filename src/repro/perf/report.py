"""Self-contained HTML perf dashboard + terminal summary.

``render_html`` turns a perf history into **one** HTML file with inline
SVG — no scripts, no external assets, nothing fetched — so the file can
be archived as a CI artifact and opened years later.  The charts:

* per-workload **dynamic 32-bit extension** trend, one line per paper
  variant (the headline quantity of Tables 1/2 / Figures 11-12);
* **phase breakdown** stacked bars for the default variant: compile
  buckets (sign-ext, chains, others) plus the execute phase per run;
* **cache hit-rate** trend from the ``driver.cache.*`` counters;
* **engine speedup** trend (reference / closure execute time) where a
  run measured both engines.

Styling follows the repo's chart conventions: categorical hues are
assigned to entities in a *fixed* order and never re-used for a
different series; light and dark palettes are both declared (the file
respects ``prefers-color-scheme``); every chart carries a legend and a
collapsible data table, so nothing is readable by color alone; marks
carry native ``<title>`` tooltips.
"""

from __future__ import annotations

import html
import time
from typing import Any, Callable, Iterable, Sequence

from .record import RunRecord

# Categorical palette (validated light/dark pairs, fixed slot order).
_SERIES_LIGHT = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948"]
_SERIES_DARK = ["#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767"]

#: variants plotted in the trend charts, in slot order (identity is
#: fixed: a variant keeps its hue whether or not others are present)
VARIANT_SLOTS = [
    "baseline",
    "basic ud/du",
    "insert",
    "order",
    "array",
    "new algorithm (all)",
]

#: phase stack order (slot order) for the breakdown chart
PHASE_SLOTS = ["sign_ext", "chains", "others", "execute"]

DEFAULT_VARIANT = "new algorithm (all)"

_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
""" + "".join(
    f"  --series-{i + 1}: {hex_};\n"
    for i, hex_ in enumerate(_SERIES_LIGHT)
) + """}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
""" + "".join(
    f"    --series-{i + 1}: {hex_};\n"
    for i, hex_ in enumerate(_SERIES_DARK)
) + """  }
}
body { background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 2rem auto; max-width: 1080px; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 1rem 0; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 120px; }
.tile .v { font-size: 1.5rem; }
.tile .k { color: var(--text-secondary); font-size: 0.8rem; }
figure { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; margin: 1rem 0; padding: 12px 16px; }
figcaption { color: var(--text-secondary); margin-bottom: 6px; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 6px 0;
  color: var(--text-secondary); font-size: 0.8rem; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
details { margin-top: 8px; color: var(--text-secondary);
  font-size: 0.8rem; }
table { border-collapse: collapse; margin-top: 6px; }
td, th { border-bottom: 1px solid var(--grid); padding: 2px 10px 2px 0;
  text-align: right; font-variant-numeric: tabular-nums; }
th { color: var(--muted); font-weight: 500; }
td:first-child, th:first-child { text-align: left; }
svg text { fill: var(--muted); font-size: 10px;
  font-family: system-ui, sans-serif; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
footer { color: var(--muted); font-size: 0.8rem; margin-top: 2rem; }
"""


def _esc(text: Any) -> str:
    return html.escape(str(text))


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


# -- chart geometry -----------------------------------------------------------

_W, _H = 640, 220
_ML, _MR, _MT, _MB = 56, 16, 12, 28


def _scale(lo: float, hi: float, px_lo: float,
           px_hi: float) -> Callable[[float], float]:
    span = (hi - lo) or 1.0
    return lambda v: px_lo + (v - lo) / span * (px_hi - px_lo)


def _grid_and_axes(y_lo: float, y_hi: float,
                   y_fmt: Callable[[float], str]) -> list[str]:
    parts = []
    for i in range(5):
        value = y_lo + (y_hi - y_lo) * i / 4
        y = _scale(y_lo, y_hi, _H - _MB, _MT)(value)
        cls = "axis" if i == 0 else "grid"
        parts.append(f'<line class="{cls}" x1="{_ML}" y1="{y:.1f}" '
                     f'x2="{_W - _MR}" y2="{y:.1f}"/>')
        parts.append(f'<text x="{_ML - 6}" y="{y + 3:.1f}" '
                     f'text-anchor="end">{_esc(y_fmt(value))}</text>')
    return parts


def _x_tick_labels(labels: Sequence[str],
                   x_of: Callable[[float], float]) -> list[str]:
    parts = []
    step = max(1, len(labels) // 8)
    for i in range(0, len(labels), step):
        x = x_of(i)
        parts.append(f'<text x="{x:.1f}" y="{_H - _MB + 14}" '
                     f'text-anchor="middle">{_esc(labels[i])}</text>')
    return parts


def _line_chart(
    series: list[tuple[str, int, list[tuple[int, float]]]],
    x_labels: Sequence[str],
    y_fmt: Callable[[float], str] = _fmt,
) -> str:
    """Polyline chart; ``series`` is (name, slot, [(x index, y)])."""
    values = [y for _, _, pts in series for _, y in pts]
    if not values:
        return ""
    y_lo = min(0.0, min(values))
    y_hi = max(values) or 1.0
    y_hi += (y_hi - y_lo) * 0.05
    x_of = _scale(0, max(1, len(x_labels) - 1), _ML, _W - _MR)
    y_of = _scale(y_lo, y_hi, _H - _MB, _MT)

    parts = [f'<svg viewBox="0 0 {_W} {_H}" role="img" '
             f'width="100%" xmlns="http://www.w3.org/2000/svg">']
    parts.extend(_grid_and_axes(y_lo, y_hi, y_fmt))
    parts.extend(_x_tick_labels(x_labels, x_of))
    for name, slot, points in series:
        color = f"var(--series-{slot})"
        coords = " ".join(f"{x_of(x):.1f},{y_of(y):.1f}"
                          for x, y in points)
        if len(points) > 1:
            parts.append(f'<polyline fill="none" stroke="{color}" '
                         f'stroke-width="2" stroke-linejoin="round" '
                         f'points="{coords}"/>')
        for x, y in points:
            parts.append(
                f'<circle cx="{x_of(x):.1f}" cy="{y_of(y):.1f}" r="3" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>{_esc(name)} · '
                f'{_esc(x_labels[x] if x < len(x_labels) else x)}: '
                f'{_esc(y_fmt(y))}</title></circle>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _stacked_bars(
    stacks: list[tuple[str, list[tuple[str, int, float]]]],
    y_fmt: Callable[[float], str] = _fmt,
) -> str:
    """``stacks`` is (x label, [(segment name, slot, value)])."""
    totals = [sum(v for _, _, v in segments) for _, segments in stacks]
    if not any(totals):
        return ""
    y_hi = max(totals) * 1.05
    y_of = _scale(0.0, y_hi, _H - _MB, _MT)
    n = len(stacks)
    band = (_W - _ML - _MR) / max(1, n)
    bar_w = min(40.0, band * 0.7)

    parts = [f'<svg viewBox="0 0 {_W} {_H}" role="img" '
             f'width="100%" xmlns="http://www.w3.org/2000/svg">']
    parts.extend(_grid_and_axes(0.0, y_hi, y_fmt))
    for i, (label, segments) in enumerate(stacks):
        x = _ML + band * i + (band - bar_w) / 2
        base = 0.0
        for name, slot, value in segments:
            if value <= 0:
                continue
            y0, y1 = y_of(base), y_of(base + value)
            # 2px surface gap between stacked segments
            height = max(0.0, (y0 - y1) - 2)
            parts.append(
                f'<rect x="{x:.1f}" y="{y1 + 1:.1f}" '
                f'width="{bar_w:.1f}" height="{height:.1f}" rx="2" '
                f'fill="var(--series-{slot})"><title>{_esc(label)} · '
                f'{_esc(name)}: {_esc(y_fmt(value))}</title></rect>'
            )
            base += value
        parts.append(f'<text x="{x + bar_w / 2:.1f}" '
                     f'y="{_H - _MB + 14}" text-anchor="middle">'
                     f'{_esc(label)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _legend(entries: list[tuple[str, int]]) -> str:
    if len(entries) < 2:
        return ""
    spans = "".join(
        f'<span><span class="swatch" '
        f'style="background:var(--series-{slot})"></span>'
        f'{_esc(name)}</span>'
        for name, slot in entries
    )
    return f'<div class="legend">{spans}</div>'


def _data_table(header: Sequence[str],
                rows: Iterable[Sequence[Any]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in header)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (f"<details><summary>data table</summary><table>"
            f"<tr>{head}</tr>{body}</table></details>")


def _figure(caption: str, chart: str, legend: str = "",
            table: str = "") -> str:
    if not chart:
        return ""
    return (f"<figure><figcaption>{_esc(caption)}</figcaption>"
            f"{legend}{chart}{table}</figure>")


# -- history shaping ----------------------------------------------------------

def _runs_in_order(records: list[RunRecord]) -> list[str]:
    """Run ids ordered by first record creation time."""
    first_seen: dict[str, float] = {}
    for record in records:
        run_id = record.run_id or "unbatched"
        if run_id not in first_seen:
            first_seen[run_id] = record.created
    return sorted(first_seen, key=lambda run: first_seen[run])


def _run_label(records: list[RunRecord]) -> str:
    for record in records:
        if record.git_rev and record.git_rev != "unknown":
            return record.git_rev[:7]
    created = min((r.created for r in records if r.created), default=0)
    if created:
        return time.strftime("%m-%d %H:%M", time.localtime(created))
    return "run"


def _best_phase(records: list[RunRecord], phase: str) -> float | None:
    values = [r.phases[phase] for r in records if phase in r.phases]
    return min(values) if values else None


class _History:
    """Records bucketed by run, then by cell key."""

    def __init__(self, records: list[RunRecord]) -> None:
        self.records = records
        self.run_ids = _runs_in_order(records)
        self.by_run: dict[str, list[RunRecord]] = {}
        for record in records:
            self.by_run.setdefault(record.run_id or "unbatched",
                                   []).append(record)
        self.run_labels = [_run_label(self.by_run[run])
                           for run in self.run_ids]

    def workloads(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.workload)
        return list(seen)

    def cell(self, run_id: str, *, workload: str | None = None,
             variant: str | None = None,
             engine: str | None = None) -> list[RunRecord]:
        return [
            r for r in self.by_run.get(run_id, ())
            if (workload is None or r.workload == workload)
            and (variant is None or r.variant == variant)
            and (engine is None or r.engine == engine)
        ]


# -- sections -----------------------------------------------------------------

def _tiles(history: _History) -> str:
    hosts = {r.host_id for r in history.records if r.host_id}
    revs = {r.git_rev for r in history.records
            if r.git_rev and r.git_rev != "unknown"}
    tiles = [
        ("records", len(history.records)),
        ("runs", len(history.run_ids)),
        ("workloads", len(history.workloads())),
        ("hosts", len(hosts) or 1),
        ("revisions", len(revs) or 1),
    ]
    spans = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>'
        for k, v in tiles
    )
    return f'<div class="tiles">{spans}</div>'


def _extends_section(history: _History, workload: str) -> str:
    series = []
    rows = []
    for slot, variant in enumerate(VARIANT_SLOTS, start=1):
        points = []
        for x, run_id in enumerate(history.run_ids):
            cells = history.cell(run_id, workload=workload,
                                 variant=variant)
            if cells:
                value = min(c.measures.get("dyn_extend32", 0)
                            for c in cells)
                points.append((x, float(value)))
                rows.append((history.run_labels[x], variant, int(value)))
        if points:
            series.append((variant, slot, points))
    chart = _line_chart(series, history.run_labels)
    legend = _legend([(name, slot) for name, slot, _ in series])
    table = _data_table(("run", "variant", "dyn extend32"), rows)
    return _figure(f"{workload}: dynamic 32-bit sign extensions per "
                   f"variant", chart, legend, table)


def _phase_section(history: _History, workload: str) -> str:
    stacks = []
    rows = []
    for x, run_id in enumerate(history.run_ids):
        cells = history.cell(run_id, workload=workload,
                             variant=DEFAULT_VARIANT)
        if not cells:
            continue
        segments = []
        for slot, phase in enumerate(PHASE_SLOTS, start=1):
            value = _best_phase(cells, phase)
            if value is not None:
                segments.append((phase, slot, value))
                rows.append((history.run_labels[x], phase,
                             f"{value * 1000:.2f} ms"))
        if segments:
            stacks.append((history.run_labels[x], segments))
    chart = _stacked_bars(stacks, y_fmt=lambda v: f"{v * 1000:.1f}ms")
    legend = _legend([(p, s + 1) for s, p in enumerate(PHASE_SLOTS)])
    table = _data_table(("run", "phase", "seconds"), rows)
    return _figure(f"{workload}: phase wall time, variant "
                   f"“{DEFAULT_VARIANT}” (min of repeats)",
                   chart, legend, table)


def _hit_rate(records: list[RunRecord]) -> float | None:
    hits = misses = 0
    for record in records:
        for name, value in record.counters.items():
            if name.startswith("driver.cache.hits"):
                hits += value
            elif name.startswith("driver.cache.misses"):
                misses += value
    if hits + misses == 0:
        return None
    return 100.0 * hits / (hits + misses)


def _cache_section(history: _History) -> str:
    points = []
    rows = []
    for x, run_id in enumerate(history.run_ids):
        rate = _hit_rate(history.by_run[run_id])
        if rate is not None:
            points.append((x, rate))
            rows.append((history.run_labels[x], f"{rate:.1f}%"))
    chart = _line_chart([("cache hit rate", 1, points)],
                        history.run_labels,
                        y_fmt=lambda v: f"{v:.0f}%")
    table = _data_table(("run", "hit rate"), rows)
    return _figure("compile-cache hit rate (driver.cache.* counters)",
                   chart, "", table)


def _speedup_section(history: _History) -> str:
    series = []
    rows = []
    workloads = history.workloads()[:3]
    slot = 0
    for workload in workloads:
        for engine in ("closure", "codegen"):
            slot += 1
            points = []
            for x, run_id in enumerate(history.run_ids):
                timed = _best_phase(
                    history.cell(run_id, workload=workload,
                                 engine=engine), "execute")
                reference = _best_phase(
                    history.cell(run_id, workload=workload,
                                 engine="reference"), "execute")
                if timed and reference:
                    speedup = reference / timed
                    points.append((x, speedup))
                    rows.append((history.run_labels[x], workload,
                                 engine, f"{speedup:.2f}x"))
            if points:
                series.append((f"{workload} ({engine})", slot, points))
    chart = _line_chart(series, history.run_labels,
                        y_fmt=lambda v: f"{v:.1f}x")
    legend = _legend([(name, slot) for name, slot, _ in series])
    table = _data_table(("run", "workload", "engine", "speedup"), rows)
    return _figure("translated-engine speedup over reference "
                   "(execute phase, min of repeats)", chart, legend,
                   table)


def _serving_sections(history: _History) -> list[str]:
    """One latency-percentile figure per loadtest cell (closed/open).

    Serving records (``engine == "serve"``) carry the latency
    distribution of one ``repro loadtest`` campaign in their measures;
    the chart tracks p50/p95/p99 across campaigns, the table adds
    throughput and the shed/coalesced disposition counts.
    """
    quantiles = (("p50", "p50_ms"), ("p95", "p95_ms"), ("p99", "p99_ms"))
    sections = []
    for workload in history.workloads():
        series = []
        for slot, (label, measure) in enumerate(quantiles, start=1):
            points = []
            for x, run_id in enumerate(history.run_ids):
                values = [
                    c.measures[measure]
                    for c in history.cell(run_id, workload=workload)
                    if measure in c.measures
                ]
                if values:
                    points.append((x, min(values)))
            if points:
                series.append((label, slot, points))
        rows = []
        for x, run_id in enumerate(history.run_ids):
            for cell in history.cell(run_id, workload=workload):
                measures = cell.measures
                rows.append((
                    history.run_labels[x],
                    f"{measures.get('p50_ms', 0):.1f}",
                    f"{measures.get('p95_ms', 0):.1f}",
                    f"{measures.get('p99_ms', 0):.1f}",
                    f"{measures.get('throughput_rps', 0):.1f}",
                    int(measures.get("shed", 0)),
                    int(measures.get("coalesced", 0)),
                ))
        chart = _line_chart(series, history.run_labels,
                            y_fmt=lambda v: f"{v:.0f}ms")
        legend = _legend([(name, slot) for name, slot, _ in series])
        table = _data_table(
            ("run", "p50 ms", "p95 ms", "p99 ms", "req/s", "shed",
             "coalesced"), rows)
        sections.append(_figure(
            f"{workload}: served request latency percentiles "
            f"(repro loadtest)", chart, legend, table))
    return sections


# -- entry points -------------------------------------------------------------

def render_html(records: list[RunRecord],
                title: str = "repro perf dashboard",
                profiles: list | None = None) -> str:
    """The whole dashboard as one self-contained HTML document.

    ``profiles`` optionally appends one hot-block heatmap figure per
    :class:`~repro.profile.ExecutionProfile` artifact (the
    ``repro perf report --profiles DIR`` view).
    """
    # Serving-latency rows measure the front door, not the compiler;
    # they get their own section instead of polluting the trend charts.
    serving = [r for r in records if r.engine == "serve"]
    history = _History([r for r in records if r.engine != "serve"])
    sections = [_tiles(_History(records)), _cache_section(history),
                _speedup_section(history)]
    for workload in history.workloads():
        sections.append(_extends_section(history, workload))
        sections.append(_phase_section(history, workload))
    if serving:
        sections.append("<h2>serving latency (repro serve)</h2>")
        sections.extend(_serving_sections(_History(serving)))
    extra_css = ""
    if profiles:
        from ..profile.heatmap import HEAT_CSS, heatmap_section

        extra_css = HEAT_CSS
        sections.append("<h2>hot blocks (profile artifacts)</h2>")
        sections.extend(heatmap_section(p) for p in profiles)
    generated = time.strftime("%Y-%m-%d %H:%M:%S")
    body = "".join(s for s in sections if s)
    if not records and not profiles:
        body = "<p>No perf records yet — run <code>repro perf record"\
               "</code> first.</p>"
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">"
        f"<title>{_esc(title)}</title><style>{_CSS}{extra_css}</style>"
        "</head>"
        f"<body><h1>{_esc(title)}</h1>{body}"
        f"<footer>generated {generated} · {len(records)} records · "
        "all assets inline</footer></body></html>\n"
    )


def format_history_summary(records: list[RunRecord]) -> str:
    """Terminal table: the latest run's cells and their best times."""
    if not records:
        return "perf history is empty"
    history = _History(records)
    latest = history.run_ids[-1]
    cells: dict[tuple, list[RunRecord]] = {}
    for record in history.by_run[latest]:
        cells.setdefault(record.key(), []).append(record)
    lines = [
        f"latest run {history.run_labels[-1]} "
        f"({len(history.by_run[latest])} records, "
        f"{len(history.run_ids)} runs in history)",
        f"{'cell':<58s}{'execute':>10s}{'extends32':>11s}"
        f"{'repeats':>9s}",
    ]
    for key in sorted(cells):
        group = cells[key]
        execute = _best_phase(group, "execute")
        extends = min((r.measures.get("dyn_extend32") for r in group
                       if "dyn_extend32" in r.measures),
                      default=None)
        lines.append(
            f"{key.label():<58s}"
            f"{(f'{execute * 1000:.2f}ms' if execute is not None else '-'):>10s}"
            f"{(str(int(extends)) if extends is not None else '-'):>11s}"
            f"{len(group):>9d}"
        )
    return "\n".join(lines)
