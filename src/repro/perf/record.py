"""The perf timeseries record: one benchmark cell, one schema'd row.

Every benchmark execution in the repo — a harness grid cell, an engine
benchmark repeat, a paper-figure suite run in ``benchmarks/`` — lands
in the same append-only history as one :class:`RunRecord`.  A record
captures everything needed to compare it against any other run of the
same cell:

* the **cell key** ``(workload, machine, variant, engine)`` — what was
  measured;
* **per-phase wall times** (the compile buckets of
  :class:`~repro.opt.pass_manager.Timing` plus the ``execute`` phase,
  and ``translate`` where the closure engine paid it);
* **deterministic measures** (dynamic extension counts per width,
  static extensions, interpreter steps, modelled cycles) — these are
  pure functions of the code and must reproduce exactly on any host;
* **counter families** from the telemetry metrics registry
  (``driver.cache.*``, ``translate.*``, ``runtime.engine.*``,
  ``signext.*`` elimination decisions per theorem) when the producer
  collected them;
* **provenance**: host fingerprint, python/platform, the
  config fingerprint from :mod:`repro.driver.fingerprint`, git
  revision, and package version.

Records are content-addressed (:attr:`RunRecord.record_id`): the digest
covers every field except bookkeeping (``created``, ``run_id``), so the
history store can deduplicate replayed imports without ever comparing
floats for "close enough".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, NamedTuple

SCHEMA_VERSION = 1

#: Measures that are deterministic functions of (program, config,
#: fuel) — compared exactly across hosts by the compare engine.
DETERMINISTIC_MEASURES = (
    "dyn_extend32",
    "dyn_extend16",
    "dyn_extend8",
    "static_extends",
    "steps",
)


class CellKey(NamedTuple):
    """The pairing key the compare engine joins records on."""

    workload: str
    machine: str
    variant: str
    engine: str

    def label(self) -> str:
        return f"{self.workload}/{self.machine}/{self.variant}/{self.engine}"


@dataclass
class RunRecord:
    """One benchmark cell measurement (see module docstring)."""

    workload: str
    variant: str
    engine: str
    #: target machine model (``ia64``/``ppc64``) — not the host
    machine: str
    #: which producer emitted this record (``harness``,
    #: ``engine-bench``, ``benchmarks``, ``cli``, ...)
    source: str
    fuel: int
    #: repeat index within one recording run; min-of-repeats happens at
    #: compare time across records sharing (run_id, key)
    repeat: int = 0
    #: seconds per phase: the Timing buckets (``sign_ext``, ``chains``,
    #: ``others``) plus ``execute`` and optionally ``translate``
    phases: dict[str, float] = field(default_factory=dict)
    #: deterministic measures (see DETERMINISTIC_MEASURES) + floats
    #: such as ``cycles``/``extend_cycles``
    measures: dict[str, float] = field(default_factory=dict)
    #: flattened telemetry counter series, when collected
    counters: dict[str, int] = field(default_factory=dict)
    #: ``{"python": ..., "platform": ..., "host_id": ...}``
    host: dict[str, str] = field(default_factory=dict)
    config_fingerprint: str = ""
    git_rev: str = ""
    package_version: str = ""
    #: groups the records appended by one recording invocation
    run_id: str = ""
    created: float = 0.0
    schema_version: int = SCHEMA_VERSION

    # -- identity -------------------------------------------------------------

    def key(self) -> CellKey:
        return CellKey(self.workload, self.machine, self.variant,
                       self.engine)

    @property
    def host_id(self) -> str:
        return self.host.get("host_id", "")

    @property
    def record_id(self) -> str:
        """Content address over everything except bookkeeping fields."""
        payload = asdict(self)
        payload.pop("created", None)
        payload.pop("run_id", None)
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        document = asdict(self)
        document["record_id"] = self.record_id
        return document

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "RunRecord":
        if not isinstance(document, dict):
            raise TypeError("run record document must be a dict, not "
                            f"{type(document).__name__}")
        known = set(cls.__dataclass_fields__)
        fields = {k: v for k, v in document.items() if k in known}
        for required in ("workload", "variant", "engine", "machine"):
            if required not in fields:
                raise ValueError(f"run record missing {required!r}")
        fields.setdefault("source", "unknown")
        fields.setdefault("fuel", 0)
        return cls(**fields)


def validate_record(document: dict[str, Any]) -> list[str]:
    """Schema check for one serialized record; returns problems."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["record is not an object"]
    for key in ("workload", "variant", "engine", "machine",
                "schema_version"):
        if key not in document:
            problems.append(f"missing key {key!r}")
    for key in ("phases", "measures", "counters"):
        value = document.get(key)
        if value is not None and not isinstance(value, dict):
            problems.append(f"{key} is not an object")
    phases = document.get("phases") or {}
    if isinstance(phases, dict):
        for name, seconds in phases.items():
            if not isinstance(seconds, (int, float)) or seconds < 0:
                problems.append(f"phase {name!r} has bad duration "
                                f"{seconds!r}")
    return problems
