"""Statistical comparison of perf record batches.

The compare engine pairs a *current* batch of records against a
*baseline* batch by cell key ``(workload, machine, variant, engine)``
and classifies every metric of every paired cell as ``improved`` /
``regressed`` / ``neutral``.  Two metric classes with different rules:

**Time metrics** (``execute``, ``compile``, ``translate`` wall seconds)
are noisy, so the verdict is statistical:

* the point estimate on each side is the **minimum over repeats** —
  for a deterministic workload the fastest observed run is the one
  least disturbed by the host (see the measurement-bias discussion in
  PAPERS.md);
* the regression bar is a **noise floor**: the larger of a relative
  threshold (default 10% of the baseline best) and ``k`` times the
  scaled median absolute deviation of either side's repeats, plus an
  absolute floor below which wall-clock deltas are meaningless;
* wall times are only comparable on the same host — when the two
  sides carry different host fingerprints every time metric is
  ``skipped`` (counts still compare), which is what lets a
  repo-committed baseline gate CI runs on other machines.

**Deterministic measures** (dynamic extension counts, static
extensions, interpreter steps) are pure functions of the code: any
change is real, so they compare exactly — an increase is a regression
no matter how small.  Modelled cycles are floats but equally
deterministic; they get an epsilon band only to absorb float printing.

Cells present on one side only are reported as ``new`` / ``missing``
rather than silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any, Iterable

from .record import DETERMINISTIC_MEASURES, CellKey, RunRecord

#: phases compared as wall time (``compile`` is the sum of all
#: compile-side buckets, computed below)
TIME_METRICS = ("execute", "compile", "translate")

#: deterministic float measures: epsilon band instead of noise model
FLOAT_MEASURES = ("cycles", "extend_cycles")

IMPROVED = "improved"
REGRESSED = "regressed"
NEUTRAL = "neutral"
SKIPPED = "skipped"
NEW = "new"
MISSING = "missing"

#: below this many seconds a wall-time delta is clock jitter, not data
ABS_TIME_FLOOR = 5e-4


def parse_threshold(text: str | float) -> float:
    """Accept ``0.1``, ``"0.1"``, or ``"10%"``."""
    if isinstance(text, (int, float)):
        return float(text)
    text = text.strip()
    if text.endswith("%"):
        return float(text[:-1]) / 100.0
    return float(text)


def scaled_mad(values: list[float]) -> float:
    """Median absolute deviation scaled to estimate sigma (x1.4826)."""
    if len(values) < 2:
        return 0.0
    center = median(values)
    return 1.4826 * median(abs(v - center) for v in values)


@dataclass
class MetricVerdict:
    """One metric of one paired cell."""

    metric: str
    classification: str
    baseline: float | None = None
    current: float | None = None
    delta: float | None = None
    noise_floor: float | None = None
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "classification": self.classification,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "noise_floor": self.noise_floor,
            "note": self.note,
        }


@dataclass
class CellVerdict:
    """All metric verdicts for one cell key."""

    key: CellKey
    classification: str
    metrics: list[MetricVerdict] = field(default_factory=list)
    note: str = ""

    def regressions(self) -> list[MetricVerdict]:
        return [m for m in self.metrics
                if m.classification == REGRESSED]

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.key.workload,
            "machine": self.key.machine,
            "variant": self.key.variant,
            "engine": self.key.engine,
            "classification": self.classification,
            "note": self.note,
            "metrics": [m.to_dict() for m in self.metrics],
        }


@dataclass
class CompareReport:
    """Machine-readable comparison verdict for a whole batch."""

    cells: list[CellVerdict]
    threshold: float
    mad_k: float

    def by_classification(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.classification] = (
                counts.get(cell.classification, 0) + 1
            )
        return counts

    @property
    def regressed(self) -> list[CellVerdict]:
        return [c for c in self.cells if c.classification == REGRESSED]

    @property
    def ok(self) -> bool:
        return not self.regressed

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "threshold": self.threshold,
            "mad_k": self.mad_k,
            "summary": self.by_classification(),
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _group(records: Iterable[RunRecord]) -> dict[CellKey,
                                                 list[RunRecord]]:
    groups: dict[CellKey, list[RunRecord]] = {}
    for record in records:
        groups.setdefault(record.key(), []).append(record)
    return groups


def _time_samples(records: list[RunRecord], metric: str) -> list[float]:
    """All observed wall times of one phase across repeats."""
    if metric == "compile":
        samples = []
        for record in records:
            buckets = [seconds for phase, seconds in record.phases.items()
                       if phase not in ("execute", "translate")]
            if buckets:
                samples.append(sum(buckets))
        return samples
    return [record.phases[metric] for record in records
            if metric in record.phases]


def _measure_samples(records: list[RunRecord],
                     metric: str) -> list[float]:
    return [record.measures[metric] for record in records
            if metric in record.measures]


def _hosts(records: list[RunRecord]) -> set[str]:
    return {record.host_id for record in records if record.host_id}


def _compare_time(metric: str, base: list[float], cur: list[float],
                  threshold: float, mad_k: float) -> MetricVerdict:
    base_best = min(base)
    cur_best = min(cur)
    noise = max(
        threshold * base_best,
        mad_k * scaled_mad(base),
        mad_k * scaled_mad(cur),
        ABS_TIME_FLOOR,
    )
    delta = cur_best - base_best
    if delta > noise:
        classification = REGRESSED
    elif delta < -noise:
        classification = IMPROVED
    else:
        classification = NEUTRAL
    return MetricVerdict(metric=metric, classification=classification,
                         baseline=base_best, current=cur_best,
                         delta=delta, noise_floor=noise)


def _compare_exact(metric: str, base: float, cur: float,
                   epsilon: float = 0.0) -> MetricVerdict:
    delta = cur - base
    if delta > epsilon:
        classification = REGRESSED
    elif delta < -epsilon:
        classification = IMPROVED
    else:
        classification = NEUTRAL
    return MetricVerdict(metric=metric, classification=classification,
                         baseline=base, current=cur, delta=delta,
                         noise_floor=epsilon)


def compare_records(
    current: Iterable[RunRecord],
    baseline: Iterable[RunRecord],
    *,
    threshold: float = 0.10,
    mad_k: float = 3.0,
) -> CompareReport:
    """Pair ``current`` against ``baseline`` by cell key and classify.

    ``threshold`` is the relative wall-time noise floor (0.10 = 10%);
    ``mad_k`` scales the robust per-cell noise estimate.  Deterministic
    measures ignore both — any change is real.
    """
    current_groups = _group(current)
    baseline_groups = _group(baseline)
    cells: list[CellVerdict] = []

    for key in sorted(set(current_groups) | set(baseline_groups)):
        cur_records = current_groups.get(key)
        base_records = baseline_groups.get(key)
        if cur_records is None:
            cells.append(CellVerdict(key=key, classification=MISSING,
                                     note="cell absent from current run"))
            continue
        if base_records is None:
            cells.append(CellVerdict(key=key, classification=NEW,
                                     note="cell absent from baseline"))
            continue

        metrics: list[MetricVerdict] = []
        hosts_match = bool(_hosts(cur_records) & _hosts(base_records))
        for metric in TIME_METRICS:
            base_samples = _time_samples(base_records, metric)
            cur_samples = _time_samples(cur_records, metric)
            if not base_samples or not cur_samples:
                continue
            if not hosts_match:
                metrics.append(MetricVerdict(
                    metric=metric, classification=SKIPPED,
                    note="hosts differ; wall time not comparable",
                ))
                continue
            metrics.append(_compare_time(metric, base_samples,
                                         cur_samples, threshold, mad_k))
        for metric in DETERMINISTIC_MEASURES:
            base_samples = _measure_samples(base_records, metric)
            cur_samples = _measure_samples(cur_records, metric)
            if not base_samples or not cur_samples:
                continue
            metrics.append(_compare_exact(metric, min(base_samples),
                                          min(cur_samples)))
        for metric in FLOAT_MEASURES:
            base_samples = _measure_samples(base_records, metric)
            cur_samples = _measure_samples(cur_records, metric)
            if not base_samples or not cur_samples:
                continue
            base_best = min(base_samples)
            epsilon = 1e-9 * max(1.0, abs(base_best))
            metrics.append(_compare_exact(metric, base_best,
                                          min(cur_samples), epsilon))

        if any(m.classification == REGRESSED for m in metrics):
            classification = REGRESSED
        elif any(m.classification == IMPROVED for m in metrics):
            classification = IMPROVED
        else:
            classification = NEUTRAL
        note = "" if hosts_match else ("wall-time metrics skipped: "
                                       "different hosts")
        cells.append(CellVerdict(key=key, classification=classification,
                                 metrics=metrics, note=note))

    return CompareReport(cells=cells, threshold=threshold, mad_k=mad_k)


def format_compare(report: CompareReport, *, verbose: bool = False) -> str:
    """Terminal rendering: one line per cell, details for regressions."""
    lines = []
    counts = report.by_classification()
    summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
    lines.append(f"perf compare: {len(report.cells)} cells ({summary}); "
                 f"threshold {report.threshold:.0%}")
    for cell in report.cells:
        marker = {
            REGRESSED: "!!", IMPROVED: "++", NEUTRAL: "  ",
            NEW: " +", MISSING: " -",
        }.get(cell.classification, "  ")
        lines.append(f" {marker} {cell.classification:<9s} "
                     f"{cell.key.label()}")
        interesting = (cell.metrics if verbose else cell.regressions())
        for metric in interesting:
            if metric.baseline is None:
                continue
            lines.append(
                f"      {metric.metric:<16s} {metric.baseline:>12.6g} "
                f"-> {metric.current:>12.6g}  (delta {metric.delta:+.6g},"
                f" floor {metric.noise_floor:.6g})"
            )
    return "\n".join(lines)
