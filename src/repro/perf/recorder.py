"""The one hook every benchmark producer emits perf records through.

The harness (:func:`repro.harness.measure_workload`), the engine
benchmark (:mod:`repro.interp.benchmark`), the paper-figure suites
(``benchmarks/conftest.py``), and ``repro perf record`` all take an
optional :class:`PerfRecorder`; when present, every bench cell lands in
the recorder's :class:`~repro.perf.store.HistoryStore` as one
:class:`~repro.perf.record.RunRecord`.  One hook means one timeseries:
a paper-table regeneration and a CI gate run are directly comparable
rows of the same history.

The recorder computes the per-run provenance once — host fingerprint,
python/platform, git revision, a fresh ``run_id`` grouping the batch —
so producers only supply what they measured.
"""

from __future__ import annotations

import hashlib
import os
import platform
import subprocess
import time
from pathlib import Path

from .record import RunRecord
from .store import HistoryStore

#: environment variable that opts external producers (the pytest
#: benchmark suites) into recording without new plumbing
PERF_DIR_ENV = "REPRO_PERF_DIR"


def host_fingerprint() -> dict[str, str]:
    """Stable identity of the measuring host.

    Wall-clock comparisons are only meaningful between records whose
    ``host_id`` matches; the id hashes the stable hardware/OS facts and
    deliberately excludes the python version (a python upgrade changes
    performance — that is a *finding*, not a pairing failure — so it is
    recorded separately and shown in reports).
    """
    node = platform.node()
    identity = "\x00".join((node, platform.machine(), platform.system()))
    host_id = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:12]
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_id": host_id,
    }


def current_git_rev(root: str | Path | None = None) -> str:
    """The checked-out revision, or ``"unknown"`` outside a checkout."""
    env = os.environ.get("REPRO_GIT_REV")
    if env:
        return env
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def _new_run_id() -> str:
    return f"{time.time_ns():x}-{os.getpid():x}"


class PerfRecorder:
    """Builds and appends :class:`RunRecord` rows for one run batch."""

    def __init__(
        self,
        store: HistoryStore | str | Path | None = None,
        *,
        source: str = "cli",
        run_id: str | None = None,
        git_rev: str | None = None,
    ) -> None:
        if store is None or isinstance(store, (str, Path)):
            store = HistoryStore(store)
        self.store = store
        self.source = source
        self.run_id = run_id if run_id is not None else _new_run_id()
        self.host = host_fingerprint()
        self.git_rev = git_rev if git_rev is not None else current_git_rev()
        self.recorded = 0
        self.deduplicated = 0

    def record_cell(
        self,
        *,
        workload: str,
        variant: str,
        engine: str,
        machine: str,
        fuel: int,
        repeat: int = 0,
        phases: dict[str, float] | None = None,
        measures: dict[str, float] | None = None,
        counters: dict[str, int] | None = None,
        config_fingerprint: str = "",
    ) -> RunRecord:
        """Build one record from a producer's measurements and persist
        it; returns the record (already content-addressed)."""
        from .. import __version__

        record = RunRecord(
            workload=workload,
            variant=variant,
            engine=engine,
            machine=machine,
            source=self.source,
            fuel=fuel,
            repeat=repeat,
            phases=dict(phases or {}),
            measures=dict(measures or {}),
            counters=dict(counters or {}),
            host=dict(self.host),
            config_fingerprint=config_fingerprint,
            git_rev=self.git_rev,
            package_version=__version__,
            run_id=self.run_id,
            created=time.time(),
        )
        if self.store.append(record):
            self.recorded += 1
        else:
            self.deduplicated += 1
        return record


def recorder_from_env(source: str) -> PerfRecorder | None:
    """A recorder writing to ``$REPRO_PERF_DIR``, if set."""
    directory = os.environ.get(PERF_DIR_ENV)
    if not directory:
        return None
    return PerfRecorder(HistoryStore(directory), source=source)
