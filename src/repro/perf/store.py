"""Append-only JSONL history of :class:`~repro.perf.record.RunRecord`.

The store is a directory holding one ``history.jsonl`` — one JSON
object per line, append-only, so concurrent producers can only ever
interleave whole lines (each append is a single ``write`` of one
``\\n``-terminated line opened in append mode).  Three properties the
rest of the perf subsystem relies on:

* **content-addressed dedup** — every record's ``record_id`` digest is
  tracked; appending an already-present record is a no-op, so
  re-importing a baseline file or replaying a CI artifact never
  inflates the history;
* **schema-version migration** — records written by older package
  versions are upgraded on read by the ``_MIGRATIONS`` chain; records
  from a *newer* schema than this code understands are skipped rather
  than misread;
* **corruption tolerance** — a truncated or garbled line is skipped
  (and counted), never fatal: a perf history must not be able to break
  the benchmarks that feed it.

``perf/baseline.jsonl`` in the repository root is the same format with
no directory wrapper — :func:`load_jsonl` reads either.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from ..driver.cache import default_cache_dir
from .record import SCHEMA_VERSION, RunRecord

HISTORY_FILENAME = "history.jsonl"


def default_history_dir() -> Path:
    """``<cache dir>/perf-history`` — ``~/.cache/repro/perf-history``."""
    return default_cache_dir() / "perf-history"


# -- schema migration ---------------------------------------------------------

def _migrate_v0(document: dict[str, Any]) -> dict[str, Any]:
    """v0 (pre-release shape) -> v1: ``metrics`` became ``measures``,
    ``timings`` became ``phases``, and counters grew a dedicated block."""
    document = dict(document)
    if "measures" not in document and "metrics" in document:
        document["measures"] = document.pop("metrics")
    if "phases" not in document and "timings" in document:
        document["phases"] = document.pop("timings")
    document.setdefault("counters", {})
    document["schema_version"] = 1
    return document


_MIGRATIONS: dict[int, Callable[[dict[str, Any]], dict[str, Any]]] = {
    0: _migrate_v0,
}


def migrate_record(document: dict[str, Any]) -> dict[str, Any] | None:
    """Upgrade a record document to the current schema.

    Returns ``None`` for documents newer than this code (a downgraded
    checkout must not misread them) or with no usable version.
    """
    if not isinstance(document, dict):
        return None
    version = document.get("schema_version", 0)
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        return None
    while version < SCHEMA_VERSION:
        step = _MIGRATIONS.get(version)
        if step is None:
            return None
        document = step(document)
        version = document.get("schema_version", version + 1)
    return document


# -- reading ------------------------------------------------------------------

def load_jsonl(path: str | Path) -> list[RunRecord]:
    """Every readable record in one JSONL file, in file order.

    Unparseable lines and unmigratable documents are skipped — the
    history must never be able to fail a benchmark run.
    """
    path = Path(path)
    if not path.is_file():
        return []
    records: list[RunRecord] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except ValueError:
                continue
            document = migrate_record(document)
            if document is None:
                continue
            try:
                records.append(RunRecord.from_dict(document))
            except (TypeError, ValueError):
                continue
    return records


class HistoryStore:
    """Append-only, deduplicated record store under one directory."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = (Path(directory) if directory is not None
                          else default_history_dir())
        self._seen: set[str] | None = None

    @property
    def path(self) -> Path:
        return self.directory / HISTORY_FILENAME

    # -- internal -------------------------------------------------------------

    def _known_ids(self) -> set[str]:
        if self._seen is None:
            self._seen = {r.record_id for r in load_jsonl(self.path)}
        return self._seen

    # -- writing --------------------------------------------------------------

    def append(self, record: RunRecord) -> bool:
        """Persist one record; ``False`` if its content is already
        stored (dedup by ``record_id``)."""
        record_id = record.record_id
        if record_id in self._known_ids():
            return False
        if not record.created:
            record.created = time.time()
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
        self._known_ids().add(record_id)
        return True

    def extend(self, records: Iterable[RunRecord]) -> int:
        """Append many; returns how many were new."""
        return sum(1 for record in records if self.append(record))

    # -- reading --------------------------------------------------------------

    def records(self) -> list[RunRecord]:
        return load_jsonl(self.path)

    def run_ids(self) -> list[str]:
        """Distinct run ids, oldest first (by first appearance)."""
        seen: dict[str, None] = {}
        for record in self.records():
            if record.run_id and record.run_id not in seen:
                seen[record.run_id] = None
        return list(seen)

    def records_for_run(self, run_id: str) -> list[RunRecord]:
        return [r for r in self.records() if r.run_id == run_id]

    def latest_runs(self, count: int = 2) -> list[list[RunRecord]]:
        """The newest ``count`` record batches, newest first."""
        ids = self.run_ids()
        batches = []
        for run_id in reversed(ids[-count:] if count else ids):
            batches.append(self.records_for_run(run_id))
        return batches

    def __len__(self) -> int:
        return len(self._known_ids())
