"""Performance observatory: benchmark history, regression gate, dashboard.

The perf subsystem makes every benchmark number in this repo a row in
an append-only timeseries instead of a write-once snapshot:

* :mod:`~repro.perf.record` — the :class:`RunRecord` schema: one bench
  cell with per-phase wall times, deterministic measures, counter
  families, and full provenance (host, config fingerprint, git rev);
* :mod:`~repro.perf.store` — the JSONL :class:`HistoryStore` with
  content-addressed dedup and schema-version migration;
* :mod:`~repro.perf.compare` — the statistical compare engine:
  min-of-repeats, MAD noise floor, exact comparison of deterministic
  counts, machine-readable ``improved``/``regressed``/``neutral``
  verdicts;
* :mod:`~repro.perf.recorder` — the single hook (``PerfRecorder``)
  through which the harness, the engine benchmark, the paper-figure
  suites, and the CLI all emit records;
* :mod:`~repro.perf.report` — the self-contained single-file HTML
  dashboard and the terminal summary;
* :mod:`~repro.perf.grid` — the fixed recording grid behind
  ``repro perf record`` and the CI ``perf-gate`` job.

See docs/PERF.md for the schema, the noise model, and the baseline
workflow.
"""

from .compare import (
    CompareReport,
    compare_records,
    format_compare,
    parse_threshold,
    scaled_mad,
)
from .grid import (
    DEFAULT_RECORD_VARIANTS,
    DEFAULT_RECORD_WORKLOADS,
    record_grid,
)
from .record import SCHEMA_VERSION, CellKey, RunRecord, validate_record
from .recorder import (
    PERF_DIR_ENV,
    PerfRecorder,
    current_git_rev,
    host_fingerprint,
    recorder_from_env,
)
from .report import format_history_summary, render_html
from .store import (
    HistoryStore,
    default_history_dir,
    load_jsonl,
    migrate_record,
)

__all__ = [
    "CellKey",
    "CompareReport",
    "DEFAULT_RECORD_VARIANTS",
    "DEFAULT_RECORD_WORKLOADS",
    "HistoryStore",
    "PERF_DIR_ENV",
    "PerfRecorder",
    "RunRecord",
    "SCHEMA_VERSION",
    "compare_records",
    "current_git_rev",
    "default_history_dir",
    "format_compare",
    "format_history_summary",
    "host_fingerprint",
    "load_jsonl",
    "migrate_record",
    "parse_threshold",
    "record_grid",
    "recorder_from_env",
    "render_html",
    "scaled_mad",
    "validate_record",
]
