"""SPECjvm98 222_mpegaudio: polyphase filter-bank kernel.

Windowed dot products and a 32-band matrixing DCT over double arrays —
the numeric heart of MPEG audio decoding, with dense int subscript
arithmetic (i*32+j style), mirroring the original decoder's inner loop.
"""

DESCRIPTION = "polyphase filter bank: windowing + 32-band matrixing"

SOURCE = """
void main() {
    int nbands = 32;
    int taps = 512;
    double[] window = new double[taps];
    double[] fifo = new double[taps];
    double[] bands = new double[nbands];
    double[] cosTable = new double[nbands * 64];
    // Synthesis window (deterministic pseudo-Kaiser shape).
    for (int i = 0; i < taps; i++) {
        double x = ((double) i - 256.0) / 256.0;
        window[i] = (1.0 - x * x) * Math.cos(3.14159265 * x / 2.0);
    }
    for (int k = 0; k < nbands; k++) {
        for (int m = 0; m < 64; m++) {
            cosTable[k * 64 + m] =
                Math.cos((2.0 * (double) k + 1.0) * (double) m
                         * 3.14159265358979 / 64.0);
        }
    }
    int seed = 777;
    double h = 0.0;
    for (int frame = 0; frame < 3; frame++) {
        // Shift 64 new samples into the FIFO.
        for (int i = taps - 1; i >= 64; i--) {
            fifo[i] = fifo[i - 64];
        }
        for (int i = 0; i < 64; i++) {
            seed = seed * 1103515245 + 12345;
            fifo[i] = (double) ((seed >> 16) & 1023) / 512.0 - 1.0;
        }
        // Windowing: 64 partial sums of 8 taps each.
        double[] z = new double[64];
        for (int i = 0; i < 64; i++) {
            double s = 0.0;
            for (int j = 0; j < 8; j++) {
                s += fifo[i + j * 64] * window[i + j * 64];
            }
            z[i] = s;
        }
        // Matrixing: 32 bands from 64 windowed values.
        for (int k = 0; k < nbands; k++) {
            double s = 0.0;
            for (int m = 0; m < 64; m++) {
                s += cosTable[k * 64 + m] * z[m];
            }
            bands[k] = s;
        }
        for (int k = 0; k < nbands; k++) {
            h = h * 1.0001 + bands[k];
        }
    }
    sinkd(h);
    // Quantize band energies to ints (the decoder's PCM step).
    int ih = 0;
    for (int k = 0; k < nbands; k++) {
        int q = (int) (bands[k] * 32767.0);
        if (q > 32767) { q = 32767; }
        if (q < -32768) { q = -32768; }
        ih = ih * 31 + q;
    }
    sink(ih);
}
"""
