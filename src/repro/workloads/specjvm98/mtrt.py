"""SPECjvm98 227_mtrt: a miniature ray tracer.

Sphere intersections (quadratic formula), shading, and a pixel grid —
double-precision math with int pixel/sphere subscripts, like the
original multi-threaded ray tracer (run single-threaded here, as the
paper also ran benchmarks standalone from the command line).
"""

DESCRIPTION = "ray-sphere intersection render over a small pixel grid"

SOURCE = """
// Scene: NS spheres; sphere s has center (cx[s],cy[s],cz[s]), radius r[s].
double intersect(double ox, double oy, double oz,
                 double dx, double dy, double dz,
                 double cx, double cy, double cz, double radius) {
    double lx = cx - ox;
    double ly = cy - oy;
    double lz = cz - oz;
    double b = lx * dx + ly * dy + lz * dz;
    double det = b * b - (lx * lx + ly * ly + lz * lz) + radius * radius;
    if (det < 0.0) {
        return -1.0;
    }
    det = Math.sqrt(det);
    double t = b - det;
    if (t > 0.0001) {
        return t;
    }
    t = b + det;
    if (t > 0.0001) {
        return t;
    }
    return -1.0;
}

void main() {
    int ns = 5;
    double[] cx = new double[ns];
    double[] cy = new double[ns];
    double[] cz = new double[ns];
    double[] rad = new double[ns];
    double[] shade = new double[ns];
    for (int s = 0; s < ns; s++) {
        cx[s] = (double) (s * 2 - 4);
        cy[s] = (double) ((s * 7) % 3 - 1);
        cz[s] = 8.0 + (double) s;
        rad[s] = 1.0 + 0.3 * (double) s;
        shade[s] = 0.2 + 0.15 * (double) s;
    }
    int width = 28;
    int height = 28;
    int[] image = new int[width * height];
    double lightx = 0.577;
    double lighty = 0.577;
    double lightz = -0.577;
    for (int py = 0; py < height; py++) {
        for (int px = 0; px < width; px++) {
            double dx = ((double) px - 14.0) / 14.0;
            double dy = ((double) py - 14.0) / 14.0;
            double dz = 1.0;
            double norm = Math.sqrt(dx * dx + dy * dy + dz * dz);
            dx /= norm; dy /= norm; dz /= norm;
            double best = 1.0e30;
            int hit = -1;
            for (int s = 0; s < ns; s++) {
                double t = intersect(0.0, 0.0, 0.0, dx, dy, dz,
                                     cx[s], cy[s], cz[s], rad[s]);
                if (t > 0.0 && t < best) {
                    best = t;
                    hit = s;
                }
            }
            int pixel = 0;
            if (hit >= 0) {
                // Lambert shading from the surface normal.
                double hx = dx * best;
                double hy = dy * best;
                double hz = dz * best;
                double nx = (hx - cx[hit]) / rad[hit];
                double ny = (hy - cy[hit]) / rad[hit];
                double nz = (hz - cz[hit]) / rad[hit];
                double lambert = nx * lightx + ny * lighty + nz * lightz;
                if (lambert < 0.0) {
                    lambert = 0.0;
                }
                double v = shade[hit] + 0.8 * lambert;
                pixel = (int) (v * 255.0);
                if (pixel > 255) { pixel = 255; }
            }
            image[py * width + px] = pixel;
        }
    }
    int h = 0;
    int lit = 0;
    for (int i = 0; i < width * height; i++) {
        h = h * 31 + image[i];
        if (image[i] > 0) { lit++; }
    }
    sink(h);
    sink(lit);
}
"""
