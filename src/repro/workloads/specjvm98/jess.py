"""SPECjvm98 202_jess: forward-chaining rule matching.

Facts are int-coded triples (kind, a, b) in parallel arrays; rules join
pairs of facts and assert new ones until a bounded fixpoint — the
pointer-chasing, compare-heavy control flow of a production system.
"""

DESCRIPTION = "forward-chaining joins over int-coded fact triples"

SOURCE = """
// Fact store: kind[i], fa[i], fb[i].  Kinds: 1=parent, 2=grandparent,
// 3=sibling, 4=cousin.
global int factCount = 0;

int addFact(int[] kind, int[] fa, int[] fb, int k, int a, int b) {
    // Deduplicate.
    int n = factCount;
    for (int i = 0; i < n; i++) {
        if (kind[i] == k && fa[i] == a && fb[i] == b) {
            return 0;
        }
    }
    kind[n] = k;
    fa[n] = a;
    fb[n] = b;
    factCount = n + 1;
    return 1;
}

void main() {
    int capacity = 600;
    int[] kind = new int[capacity];
    int[] fa = new int[capacity];
    int[] fb = new int[capacity];
    // Seed facts: a binary family tree of 40 people: parent(i, 2i+1/2i+2).
    for (int i = 0; i < 14; i++) {
        if (2 * i + 1 < 28) { addFact(kind, fa, fb, 1, i, 2 * i + 1); }
        if (2 * i + 2 < 28) { addFact(kind, fa, fb, 1, i, 2 * i + 2); }
    }
    // Fire rules to fixpoint (bounded rounds).
    int added = 1;
    int rounds = 0;
    while (added > 0 && rounds < 3) {
        added = 0;
        int n = factCount;
        for (int i = 0; i < n; i++) {
            if (kind[i] != 1) { continue; }
            for (int j = 0; j < n; j++) {
                if (kind[j] != 1) { continue; }
                // grandparent(x,z) :- parent(x,y), parent(y,z)
                if (fb[i] == fa[j]) {
                    added += addFact(kind, fa, fb, 2, fa[i], fb[j]);
                }
                // sibling(y1,y2) :- parent(x,y1), parent(x,y2), y1 < y2
                if (fa[i] == fa[j] && fb[i] < fb[j]) {
                    added += addFact(kind, fa, fb, 3, fb[i], fb[j]);
                }
            }
        }
        // cousin(a,b) :- sibling(x,y), parent(x,a), parent(y,b)
        n = factCount;
        for (int i = 0; i < n; i++) {
            if (kind[i] != 3) { continue; }
            for (int j = 0; j < n; j++) {
                if (kind[j] != 1 || fa[j] != fa[i]) { continue; }
                for (int k = 0; k < n; k++) {
                    if (kind[k] != 1 || fa[k] != fb[i]) { continue; }
                    added += addFact(kind, fa, fb, 4, fb[j], fb[k]);
                }
            }
        }
        rounds++;
    }
    int h = 0;
    int[] perKind = new int[5];
    for (int i = 0; i < factCount; i++) {
        h = h * 31 + (kind[i] << 16) + (fa[i] << 8) + fb[i];
        perKind[kind[i]]++;
    }
    sink(factCount);
    sink(h);
    sink(perKind[2]);
    sink(perKind[3]);
    sink(perKind[4]);
}
"""
