"""SPECjvm98 suite stand-ins."""
