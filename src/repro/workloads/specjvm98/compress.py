"""SPECjvm98 201_compress: LZW compression, as the real benchmark.

12-bit-code LZW with hash-chained dictionary tables over byte buffers —
the paper's Figure 14 shows compress with the biggest SPECjvm98 speedup
from eliminating extensions.
"""

DESCRIPTION = "LZW compress + decompress of a synthetic byte buffer"

SOURCE = """
int compressLzw(byte[] input, int[] codes, int[] prefix, int[] suffix) {
    int tableSize = 4096;
    // Dictionary: entry e (>= 256) maps prefix[e] + suffix[e].
    // Lookup is a linear probe over a small hash table.
    int[] hashCode = new int[1 << 11];
    int[] hashEntry = new int[1 << 11];
    for (int i = 0; i < hashCode.length; i++) {
        hashCode[i] = -1;
    }
    int next = 256;
    int w = input[0] & 0xff;
    int outCount = 0;
    for (int pos = 1; pos < input.length; pos++) {
        int c = input[pos] & 0xff;
        int key = (w << 8) ^ c;
        int slot = (key * 31) & (hashCode.length - 1);
        int found = -1;
        while (hashCode[slot] != -1) {
            if (hashCode[slot] == key) {
                found = hashEntry[slot];
                break;
            }
            slot = (slot + 1) & (hashCode.length - 1);
        }
        if (found >= 0) {
            w = found;
        } else {
            codes[outCount] = w;
            outCount++;
            if (next < tableSize) {
                prefix[next] = w;
                suffix[next] = c;
                hashCode[slot] = key;
                hashEntry[slot] = next;
                next++;
            }
            w = c;
        }
    }
    codes[outCount] = w;
    outCount++;
    return outCount;
}

int expandCode(int code, int[] prefix, int[] suffix, byte[] out, int at,
               byte[] stack) {
    // Writes the expansion of one code at position `at`, returns length.
    int depth = 0;
    while (code >= 256) {
        stack[depth] = (byte) suffix[code];
        depth++;
        code = prefix[code];
    }
    stack[depth] = (byte) code;
    depth++;
    for (int i = depth - 1; i >= 0; i--) {
        out[at] = stack[i];
        at++;
    }
    return depth;
}

int decompressLzw(int[] codes, int count, int[] prefix, int[] suffix,
                  byte[] out) {
    int at = 0;
    byte[] stack = new byte[256];
    for (int i = 0; i < count; i++) {
        at += expandCode(codes[i], prefix, suffix, out, at, stack);
    }
    return at;
}

void main() {
    int len = 1600;
    byte[] input = new byte[len];
    int seed = 1979;
    int pos = 0;
    // Compressible data: short pseudo-random runs of repeated bytes.
    while (pos < len) {
        seed = seed * 1103515245 + 12345;
        int value = (seed >>> 16) & 63;
        int run = 1 + ((seed >>> 8) & 7);
        for (int r = 0; r < run && pos < len; r++) {
            input[pos] = (byte) value;
            pos++;
        }
    }
    int[] codes = new int[len + 1];
    int[] prefix = new int[4096];
    int[] suffix = new int[4096];
    int count = compressLzw(input, codes, prefix, suffix);
    byte[] out = new byte[len + 16];
    int expanded = decompressLzw(codes, count, prefix, suffix, out);
    sink(count);
    sink(expanded);
    int bad = 0;
    for (int i = 0; i < len; i++) {
        if (out[i] != input[i]) { bad++; }
    }
    sink(bad);
    int h = 0;
    for (int i = 0; i < count; i++) {
        h = h * 131 + codes[i];
    }
    sink(h);
}
"""
