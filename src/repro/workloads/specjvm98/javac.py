"""SPECjvm98 213_javac: compiler front-end symbol-table kernel.

Identifier scanning plus an open-addressing hash symbol table with
scope-depth tagging — the lookup/insert mix that dominates a compiler's
front end.
"""

DESCRIPTION = "identifier scan + open-addressing symbol table ops"

SOURCE = """
global int symCount = 0;

int hashName(byte[] text, int from, int to) {
    int h = 0;
    for (int i = from; i < to; i++) {
        h = h * 31 + (text[i] & 0xff);
    }
    return h & 0x7fffffff;
}

// Table: slotHash[i] (-1 empty), slotDepth[i], slotUses[i].
int intern(int[] slotHash, int[] slotDepth, int[] slotUses,
           int h, int depth) {
    int mask = slotHash.length - 1;
    int slot = h & mask;
    while (slotHash[slot] != -1) {
        if (slotHash[slot] == h) {
            slotUses[slot]++;
            return slot;
        }
        slot = (slot + 1) & mask;
    }
    slotHash[slot] = h;
    slotDepth[slot] = depth;
    slotUses[slot] = 1;
    symCount = symCount + 1;
    return slot;
}

void main() {
    int tableSize = 512;
    int[] slotHash = new int[tableSize];
    int[] slotDepth = new int[tableSize];
    int[] slotUses = new int[tableSize];
    for (int i = 0; i < tableSize; i++) {
        slotHash[i] = -1;
    }
    // Generate source-like text: identifiers separated by punctuation,
    // braces adjust scope depth.
    int len = 1800;
    byte[] text = new byte[len];
    int seed = 5150;
    for (int i = 0; i < len; i++) {
        seed = seed * 1103515245 + 12345;
        int r = (seed >>> 10) % 100;
        if (r < 70) {
            text[i] = (byte) (97 + ((seed >>> 17) % 16));  // a..p
        } else if (r < 80) {
            text[i] = 32;   // space
        } else if (r < 90) {
            text[i] = 46;   // '.'
        } else if (r < 95) {
            text[i] = 123;  // '{'
        } else {
            text[i] = 125;  // '}'
        }
    }
    int depth = 0;
    int p = 0;
    int interned = 0;
    int usesTotal = 0;
    while (p < len) {
        int c = text[p] & 0xff;
        if (c >= 97 && c <= 122) {
            int from = p;
            while (p < len) {
                int cc = text[p] & 0xff;
                if (cc < 97 || cc > 122) { break; }
                p++;
            }
            int h = hashName(text, from, p);
            int slot = intern(slotHash, slotDepth, slotUses, h, depth);
            interned++;
            usesTotal += slotUses[slot];
        } else if (c == 123) {
            depth++;
            p++;
        } else if (c == 125) {
            if (depth > 0) { depth--; }
            p++;
        } else {
            p++;
        }
    }
    sink(symCount);
    sink(interned);
    sink(usesTotal);
    int h = 0;
    for (int i = 0; i < tableSize; i++) {
        if (slotHash[i] != -1) {
            h = h * 31 + slotUses[i] + slotDepth[i];
        }
    }
    sink(h);
    sink(depth);
}
"""
