"""SPECjvm98 209_db: an in-memory database of keyed records.

Add / lookup / modify / delete operations against a sorted index with
binary search and shell sort, like the original's address database.
"""

DESCRIPTION = "record add/find/modify/delete against a sorted int index"

SOURCE = """
global int dbSize = 0;

void shellSort(int[] keys, long[] payload, int n) {
    int gap = n / 2;
    while (gap > 0) {
        for (int i = gap; i < n; i++) {
            int key = keys[i];
            long value = payload[i];
            int j = i;
            while (j >= gap && keys[j - gap] > key) {
                keys[j] = keys[j - gap];
                payload[j] = payload[j - gap];
                j -= gap;
            }
            keys[j] = key;
            payload[j] = value;
        }
        gap /= 2;
    }
}

int binarySearch(int[] keys, int n, int target) {
    int lo = 0;
    int hi = n - 1;
    while (lo <= hi) {
        int mid = (lo + hi) >>> 1;
        int k = keys[mid];
        if (k == target) {
            return mid;
        }
        if (k < target) {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return -1;
}

void main() {
    int capacity = 300;
    int[] keys = new int[capacity];
    long[] payload = new long[capacity];
    int seed = 314159;
    int n = 0;
    // Load phase.
    for (int i = 0; i < 220; i++) {
        seed = seed * 1103515245 + 12345;
        keys[n] = (seed >>> 8) & 0xffff;
        payload[n] = (long) keys[n] * 1000L + (long) i;
        n++;
    }
    shellSort(keys, payload, n);
    // Query phase: lookups, some hits and misses.
    int hits = 0;
    long acc = 0L;
    for (int q = 0; q < 400; q++) {
        seed = seed * 1103515245 + 12345;
        int target = (seed >>> 8) & 0xffff;
        int at = binarySearch(keys, n, target);
        if (at >= 0) {
            hits++;
            acc += payload[at];
        }
    }
    sink(hits);
    sink(acc);
    // Modify phase: bump payloads of every 7th record.
    for (int i = 0; i < n; i += 7) {
        payload[i] += 13L;
    }
    // Delete phase: drop records with odd keys (stable compaction).
    int kept = 0;
    for (int i = 0; i < n; i++) {
        if ((keys[i] & 1) == 0) {
            keys[kept] = keys[i];
            payload[kept] = payload[i];
            kept++;
        }
    }
    n = kept;
    dbSize = n;
    long h = 0L;
    for (int i = 0; i < n; i++) {
        h = h * 31L + payload[i];
    }
    sink(n);
    sink(h);
}
"""
