"""SPECjvm98 228_jack: tokenizing / parsing of generated text.

A scanner over a synthetic character buffer — identifier/number/operator
classification, nesting-depth tracking, token counting — the branchy,
byte-at-a-time control flow of the original parser generator.
"""

DESCRIPTION = "token scanner + nesting checker over a generated buffer"

SOURCE = """
// Character classes.
boolean isLetter(int c) {
    return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || c == 95;
}

boolean isDigit(int c) {
    return c >= 48 && c <= 57;
}

boolean isSpace(int c) {
    return c == 32 || c == 10 || c == 9;
}

void main() {
    // Generate a pseudo-program text.
    int len = 2200;
    byte[] text = new byte[len];
    int seed = 616;
    int pos = 0;
    while (pos < len - 8) {
        seed = seed * 1103515245 + 12345;
        int what = (seed >>> 9) % 10;
        if (what < 4) {
            // identifier of 1-6 letters
            int idlen = 1 + ((seed >>> 20) % 6);
            for (int i = 0; i < idlen && pos < len; i++) {
                seed = seed * 69069 + 1;
                text[pos] = (byte) (97 + ((seed >>> 11) % 26));
                pos++;
            }
        } else if (what < 6) {
            int numlen = 1 + ((seed >>> 17) % 4);
            for (int i = 0; i < numlen && pos < len; i++) {
                seed = seed * 69069 + 1;
                text[pos] = (byte) (48 + ((seed >>> 13) % 10));
                pos++;
            }
        } else if (what == 6) {
            text[pos] = 40; pos++;  // '('
        } else if (what == 7) {
            text[pos] = 41; pos++;  // ')'
        } else if (what == 8) {
            seed = seed * 69069 + 1;
            int ops = (seed >>> 15) % 5;
            int op = 43;             // '+'
            if (ops == 1) { op = 45; }
            if (ops == 2) { op = 42; }
            if (ops == 3) { op = 61; }
            if (ops == 4) { op = 59; }
            text[pos] = (byte) op; pos++;
        } else {
            text[pos] = 32; pos++;  // ' '
        }
    }
    while (pos < len) { text[pos] = 32; pos++; }

    // Scan.
    int idents = 0;
    int numbers = 0;
    int operators = 0;
    int maxDepth = 0;
    int depth = 0;
    int unbalanced = 0;
    int identHash = 0;
    int p = 0;
    while (p < len) {
        int c = text[p] & 0xff;
        if (isSpace(c)) {
            p++;
        } else if (isLetter(c)) {
            int h = 0;
            while (p < len && (isLetter(text[p] & 0xff)
                               || isDigit(text[p] & 0xff))) {
                h = h * 31 + (text[p] & 0xff);
                p++;
            }
            idents++;
            identHash ^= h;
        } else if (isDigit(c)) {
            int v = 0;
            while (p < len && isDigit(text[p] & 0xff)) {
                v = v * 10 + ((text[p] & 0xff) - 48);
                p++;
            }
            numbers++;
            identHash += v;
        } else if (c == 40) {
            depth++;
            if (depth > maxDepth) { maxDepth = depth; }
            p++;
        } else if (c == 41) {
            if (depth == 0) {
                unbalanced++;
            } else {
                depth--;
            }
            p++;
        } else {
            operators++;
            p++;
        }
    }
    sink(idents);
    sink(numbers);
    sink(operators);
    sink(maxDepth);
    sink(unbalanced);
    sink(identHash);
}
"""
