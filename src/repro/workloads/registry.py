"""Workload registry: the paper's two benchmark suites, re-created.

Each workload is a deterministic J32 program whose kernel matches the
corresponding jBYTEmark / SPECjvm98 benchmark's computational character
(see each module's docstring).  Programs self-check by sinking
checksums; the harness verifies that every optimization variant
reproduces the unoptimized program's observable behaviour exactly.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from functools import lru_cache

from ..frontend import compile_source
from ..ir.function import Program

JBYTEMARK = [
    "numeric_sort", "string_sort", "bitfield", "fp_emu", "fourier",
    "assignment", "idea", "huffman", "neural_net", "lu_decom",
]
SPECJVM98 = ["mtrt", "jess", "compress", "db", "mpegaudio", "jack", "javac"]

#: Display names used in the paper's tables.
DISPLAY_NAMES = {
    "numeric_sort": "Numeric Sort",
    "string_sort": "String Sort",
    "bitfield": "Bitfield",
    "fp_emu": "FP Emu.",
    "fourier": "Fourier",
    "assignment": "Assignment",
    "idea": "IDEA",
    "huffman": "Huffman",
    "neural_net": "Neural Net",
    "lu_decom": "LU Decom.",
    "mtrt": "mtrt",
    "jess": "jess",
    "compress": "compress",
    "db": "db",
    "mpegaudio": "mpegaudio",
    "jack": "jack",
    "javac": "javac",
}


@dataclass(frozen=True)
class Workload:
    name: str
    suite: str
    description: str
    source: str

    @property
    def display_name(self) -> str:
        return DISPLAY_NAMES.get(self.name, self.name)

    def program(self) -> Program:
        """Compile the workload source to a fresh 32-bit-form program."""
        return compile_source(self.source, self.name)


@lru_cache(maxsize=None)
def get_workload(name: str) -> Workload:
    if name in JBYTEMARK:
        suite = "jbytemark"
    elif name in SPECJVM98:
        suite = "specjvm98"
    else:
        raise KeyError(f"unknown workload: {name}")
    module = importlib.import_module(f"repro.workloads.{suite}.{name}")
    return Workload(
        name=name,
        suite=suite,
        description=module.DESCRIPTION,
        source=module.SOURCE,
    )


def jbytemark_workloads() -> list[Workload]:
    return [get_workload(name) for name in JBYTEMARK]


def specjvm98_workloads() -> list[Workload]:
    return [get_workload(name) for name in SPECJVM98]


def all_workloads() -> list[Workload]:
    return jbytemark_workloads() + specjvm98_workloads()
