"""jBYTEmark Numeric Sort: heapsort over signed 32-bit integers.

Array-index-heavy with a data-dependent inner loop — the paper's
sweet spot for Theorem-4 elimination (sift-down walks ``2*i+1``
children, a classic non-loop-invariant subscript).
"""

DESCRIPTION = "heapsort of pseudo-random 32-bit integers"

SOURCE = """
int gseed = 8675309;

int nextRand() {
    int s = gseed * 1103515245 + 12345;
    gseed = s;
    return s;
}

void siftDown(int[] a, int n, int start) {
    int root = start;
    int tmp = a[root];
    while (2 * root + 1 < n) {
        int child = 2 * root + 1;
        if (child + 1 < n && a[child + 1] > a[child]) {
            child = child + 1;
        }
        if (a[child] <= tmp) {
            break;
        }
        a[root] = a[child];
        root = child;
    }
    a[root] = tmp;
}

void heapSort(int[] a) {
    int n = a.length;
    for (int start = n / 2 - 1; start >= 0; start--) {
        siftDown(a, n, start);
    }
    for (int end = n - 1; end > 0; end--) {
        int tmp = a[end];
        a[end] = a[0];
        a[0] = tmp;
        siftDown(a, end, 0);
    }
}

int checksum(int[] a) {
    int h = 0;
    for (int i = 0; i < a.length; i++) {
        h = h * 31 + a[i];
    }
    return h;
}

void main() {
    int n = 400;
    int[] a = new int[n];
    for (int iter = 0; iter < 2; iter++) {
        for (int i = 0; i < n; i++) {
            a[i] = nextRand();
        }
        heapSort(a);
        // verify sortedness
        int bad = 0;
        for (int i = 1; i < n; i++) {
            if (a[i - 1] > a[i]) {
                bad++;
            }
        }
        sink(bad);
        sink(checksum(a));
    }
}
"""
