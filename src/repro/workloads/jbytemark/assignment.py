"""jBYTEmark Assignment: task-assignment over a 2-D cost matrix.

Row/column reduction plus a greedy augmentation sweep over ``int[][]``
— two-level array indexing where the inner index register is reused
across subscripts, the pattern order determination is built for.
"""

DESCRIPTION = "cost-matrix reduction and greedy assignment on int[][]"

SOURCE = """
int gseed = 4242;

int nextRand() {
    gseed = gseed * 1103515245 + 12345;
    return (gseed >>> 10) & 0x3fff;
}

void reduceRows(int[][] cost, int n) {
    for (int i = 0; i < n; i++) {
        int min = cost[i][0];
        for (int j = 1; j < n; j++) {
            if (cost[i][j] < min) {
                min = cost[i][j];
            }
        }
        for (int j = 0; j < n; j++) {
            cost[i][j] -= min;
        }
    }
}

void reduceCols(int[][] cost, int n) {
    for (int j = 0; j < n; j++) {
        int min = cost[0][j];
        for (int i = 1; i < n; i++) {
            if (cost[i][j] < min) {
                min = cost[i][j];
            }
        }
        for (int i = 0; i < n; i++) {
            cost[i][j] -= min;
        }
    }
}

int greedyAssign(int[][] cost, int n, int[] rowOf, int[] colOf) {
    for (int i = 0; i < n; i++) {
        rowOf[i] = -1;
        colOf[i] = -1;
    }
    int assigned = 0;
    // Repeatedly pick the cheapest unassigned (row, col) pair.
    while (assigned < n) {
        int bestRow = -1;
        int bestCol = -1;
        int best = 0x7fffffff;
        for (int i = 0; i < n; i++) {
            if (colOf[i] >= 0) { continue; }
            for (int j = 0; j < n; j++) {
                if (rowOf[j] >= 0) { continue; }
                if (cost[i][j] < best) {
                    best = cost[i][j];
                    bestRow = i;
                    bestCol = j;
                }
            }
        }
        colOf[bestRow] = bestCol;
        rowOf[bestCol] = bestRow;
        assigned++;
    }
    int total = 0;
    for (int i = 0; i < n; i++) {
        total += cost[i][colOf[i]];
    }
    return total;
}

void main() {
    int n = 18;
    int[][] cost = new int[n][n];
    int[] rowOf = new int[n];
    int[] colOf = new int[n];
    for (int iter = 0; iter < 3; iter++) {
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
                cost[i][j] = nextRand();
            }
        }
        reduceRows(cost, n);
        reduceCols(cost, n);
        int total = greedyAssign(cost, n, rowOf, colOf);
        sink(total);
        int h = 0;
        for (int i = 0; i < n; i++) {
            h = h * 31 + colOf[i];
        }
        sink(h);
    }
}
"""
