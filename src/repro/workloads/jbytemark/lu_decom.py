"""jBYTEmark LU Decomposition: LU factorization with partial pivoting.

Classic dense linear algebra on ``double[][]`` with triangular loops —
the benchmark where the paper's gen-use reference placement blows up to
286% of baseline (extensions re-executed at every subscript use).
"""

DESCRIPTION = "LU decomposition with partial pivoting + solve"

SOURCE = """
int ludcmp(double[][] a, int n, int[] indx) {
    int d = 1;
    double[] vv = new double[n];
    for (int i = 0; i < n; i++) {
        double big = 0.0;
        for (int j = 0; j < n; j++) {
            double tmp = Math.abs(a[i][j]);
            if (tmp > big) { big = tmp; }
        }
        vv[i] = 1.0 / big;
    }
    for (int j = 0; j < n; j++) {
        for (int i = 0; i < j; i++) {
            double sum = a[i][j];
            for (int k = 0; k < i; k++) {
                sum -= a[i][k] * a[k][j];
            }
            a[i][j] = sum;
        }
        double big = 0.0;
        int imax = j;
        for (int i = j; i < n; i++) {
            double sum = a[i][j];
            for (int k = 0; k < j; k++) {
                sum -= a[i][k] * a[k][j];
            }
            a[i][j] = sum;
            double dum = vv[i] * Math.abs(sum);
            if (dum >= big) {
                big = dum;
                imax = i;
            }
        }
        if (j != imax) {
            for (int k = 0; k < n; k++) {
                double dum = a[imax][k];
                a[imax][k] = a[j][k];
                a[j][k] = dum;
            }
            d = -d;
            vv[imax] = vv[j];
        }
        indx[j] = imax;
        if (j != n - 1) {
            double dum = 1.0 / a[j][j];
            for (int i = j + 1; i < n; i++) {
                a[i][j] *= dum;
            }
        }
    }
    return d;
}

void lubksb(double[][] a, int n, int[] indx, double[] b) {
    int ii = -1;
    for (int i = 0; i < n; i++) {
        int ip = indx[i];
        double sum = b[ip];
        b[ip] = b[i];
        if (ii >= 0) {
            for (int j = ii; j < i; j++) {
                sum -= a[i][j] * b[j];
            }
        } else if (sum != 0.0) {
            ii = i;
        }
        b[i] = sum;
    }
    for (int i = n - 1; i >= 0; i--) {
        double sum = b[i];
        for (int j = i + 1; j < n; j++) {
            sum -= a[i][j] * b[j];
        }
        b[i] = sum / a[i][i];
    }
}

void main() {
    int n = 16;
    double[][] a = new double[n][n];
    double[] b = new double[n];
    int[] indx = new int[n];
    int seed = 20020124;
    for (int iter = 0; iter < 3; iter++) {
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
                seed = seed * 1103515245 + 12345;
                a[i][j] = (double) ((seed >>> 14) & 1023) / 64.0 + 0.5;
            }
            a[i][i] += 40.0;  // keep it well conditioned
            b[i] = (double) (i + 1);
        }
        int d = ludcmp(a, n, indx);
        lubksb(a, n, indx, b);
        sink(d);
        double h = 0.0;
        for (int i = 0; i < n; i++) {
            h = h * 1.0001 + b[i];
        }
        sinkd(h);
    }
}
"""
