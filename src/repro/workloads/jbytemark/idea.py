"""jBYTEmark IDEA: the IDEA block cipher's core arithmetic.

16-bit modular multiply (mod 0x10001), add (mod 0x10000) and XOR over
``char``-width data — heavy masking keeps ranges in [0, 0xffff], so the
AND-positive rule (AnalyzeDEF Case 1 for bitwise AND) fires constantly.
"""

DESCRIPTION = "IDEA cipher rounds (mul mod 0x10001) over 16-bit blocks"

SOURCE = """
int mulIdea(int a, int b) {
    // IDEA multiplication: 0 represents 0x10000.
    if (a == 0) {
        return (0x10001 - b) & 0xffff;
    }
    if (b == 0) {
        return (0x10001 - a) & 0xffff;
    }
    int p = a * b;
    int hi = p >>> 16;
    int lo = p & 0xffff;
    int r = lo - hi;
    if (lo < hi) {
        r = r + 0x10001;
    }
    return r & 0xffff;
}

void encryptBlock(int[] block, int[] key) {
    int x1 = block[0];
    int x2 = block[1];
    int x3 = block[2];
    int x4 = block[3];
    int k = 0;
    for (int round = 0; round < 8; round++) {
        x1 = mulIdea(x1, key[k]);
        x2 = (x2 + key[k + 1]) & 0xffff;
        x3 = (x3 + key[k + 2]) & 0xffff;
        x4 = mulIdea(x4, key[k + 3]);
        int t1 = x1 ^ x3;
        int t2 = x2 ^ x4;
        t1 = mulIdea(t1, key[k + 4]);
        t2 = (t1 + t2) & 0xffff;
        t2 = mulIdea(t2, key[k + 5]);
        t1 = (t1 + t2) & 0xffff;
        x1 = x1 ^ t2;
        x4 = x4 ^ t1;
        int tmp = x2 ^ t1;
        x2 = x3 ^ t2;
        x3 = tmp;
        k += 6;
    }
    block[0] = mulIdea(x1, key[k]);
    block[1] = (x3 + key[k + 1]) & 0xffff;
    block[2] = (x2 + key[k + 2]) & 0xffff;
    block[3] = mulIdea(x4, key[k + 3]);
}

void main() {
    int[] key = new int[52];
    int seed = 31337;
    for (int i = 0; i < 52; i++) {
        seed = seed * 69069 + 1;
        key[i] = (seed >>> 13) & 0xffff;
    }
    int blocks = 100;
    int[] data = new int[blocks * 4];
    for (int i = 0; i < blocks * 4; i++) {
        seed = seed * 69069 + 1;
        data[i] = (seed >>> 9) & 0xffff;
    }
    int[] block = new int[4];
    for (int iter = 0; iter < 1; iter++) {
        int h = 0;
        for (int b = 0; b < blocks; b++) {
            block[0] = data[b * 4];
            block[1] = data[b * 4 + 1];
            block[2] = data[b * 4 + 2];
            block[3] = data[b * 4 + 3];
            encryptBlock(block, key);
            h = (h * 31 + block[0]) ^ block[3];
            data[b * 4] = block[1];
        }
        sink(h);
    }
}
"""
