"""jBYTEmark FP Emulation: software floating point on integers.

A toy binary float format (sign / 8-bit exponent / 23-bit mantissa held
in ints) with add and multiply implemented in integer ALU ops — dense
shift/mask/compare code where the paper reports the largest win (FP
Emulation drops to 0.07% of baseline extensions).
"""

DESCRIPTION = "software-emulated floating point add/mul on an int format"

SOURCE = """
// Emulated float: bit 31 sign, bits 23..30 exponent, bits 0..22 mantissa
// (with the hidden bit made explicit during arithmetic).

int femMake(int sign, int exp, int mant) {
    return (sign << 31) | ((exp & 0xff) << 23) | (mant & 0x7fffff);
}

int femFromInt(int v) {
    if (v == 0) {
        return 0;
    }
    int sign = 0;
    if (v < 0) {
        sign = 1;
        v = -v;
    }
    int exp = 127 + 23;
    // Normalize so the hidden bit (bit 23) is set.
    while (v >= 0x1000000) {
        v = v >>> 1;
        exp++;
    }
    while (v < 0x800000) {
        v = v << 1;
        exp--;
    }
    return femMake(sign, exp, v);
}

int femAdd(int a, int b) {
    if (a == 0) { return b; }
    if (b == 0) { return a; }
    int sa = a >>> 31;
    int sb = b >>> 31;
    int ea = (a >>> 23) & 0xff;
    int eb = (b >>> 23) & 0xff;
    int ma = (a & 0x7fffff) | 0x800000;
    int mb = (b & 0x7fffff) | 0x800000;
    if (ea < eb) {
        int t = ea; ea = eb; eb = t;
        t = ma; ma = mb; mb = t;
        t = sa; sa = sb; sb = t;
    }
    int shift = ea - eb;
    if (shift > 24) {
        mb = 0;
    } else {
        mb = mb >>> shift;
    }
    int sign = sa;
    int mant;
    if (sa == sb) {
        mant = ma + mb;
    } else {
        mant = ma - mb;
        if (mant < 0) {
            mant = -mant;
            sign = 1 - sign;
        }
    }
    if (mant == 0) {
        return 0;
    }
    int exp = ea;
    while (mant >= 0x1000000) {
        mant = mant >>> 1;
        exp++;
    }
    while (mant < 0x800000) {
        mant = mant << 1;
        exp--;
    }
    return femMake(sign, exp, mant);
}

int femMul(int a, int b) {
    if (a == 0 || b == 0) {
        return 0;
    }
    int sign = (a >>> 31) ^ (b >>> 31);
    int ea = (a >>> 23) & 0xff;
    int eb = (b >>> 23) & 0xff;
    int ma = (a & 0x7fffff) | 0x800000;
    int mb = (b & 0x7fffff) | 0x800000;
    // 24x24-bit multiply via 64-bit intermediate.
    long wide = (long) ma * (long) mb;
    int mant = (int) (wide >>> 23);
    int exp = ea + eb - 127;
    while (mant >= 0x1000000) {
        mant = mant >>> 1;
        exp++;
    }
    return femMake(sign, exp, mant);
}

void main() {
    int n = 110;
    int[] values = new int[n];
    int seed = 777;
    for (int i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        values[i] = femFromInt((seed >> 12) % 20000 + 1);
    }
    for (int iter = 0; iter < 1; iter++) {
        int acc = femFromInt(1);
        int sum = 0;
        for (int i = 0; i < n; i++) {
            sum = femAdd(sum, values[i]);
            acc = femMul(acc, femAdd(values[i], femFromInt(3)));
            acc = femAdd(acc, femFromInt(i));
            if ((acc >>> 23) > 250) {
                acc = femFromInt(i + 1);
            }
        }
        sink(sum);
        sink(acc);
    }
}
"""
