"""jBYTEmark Neural Net: back-propagation on a tiny feed-forward net.

Double-precision 2-D array math; integer work is subscripting, and the
paper's Table 1 shows Neural Net barely improves until the array
theorems kick in (98.8% -> 0.25%).
"""

DESCRIPTION = "back-propagation training of an 8-5-8 network"

SOURCE = """
double sigmoid(double x) {
    return 1.0 / (1.0 + Math.exp(-x));
}

void main() {
    int nin = 8;
    int nhid = 5;
    int nout = 8;
    double[][] w1 = new double[nin][nhid];
    double[][] w2 = new double[nhid][nout];
    double[] hid = new double[nhid];
    double[] out = new double[nout];
    double[] dOut = new double[nout];
    double[] dHid = new double[nhid];
    double[][] pattern = new double[8][8];

    int seed = 1234;
    for (int i = 0; i < nin; i++) {
        for (int j = 0; j < nhid; j++) {
            seed = seed * 1103515245 + 12345;
            w1[i][j] = ((double) ((seed >>> 16) & 1023) - 512.0) / 1024.0;
        }
    }
    for (int i = 0; i < nhid; i++) {
        for (int j = 0; j < nout; j++) {
            seed = seed * 1103515245 + 12345;
            w2[i][j] = ((double) ((seed >>> 16) & 1023) - 512.0) / 1024.0;
        }
    }
    for (int p = 0; p < 8; p++) {
        for (int i = 0; i < 8; i++) {
            pattern[p][i] = (p == i) ? 0.9 : 0.1;
        }
    }

    double rate = 0.4;
    double lastError = 0.0;
    for (int epoch = 0; epoch < 8; epoch++) {
        double error = 0.0;
        for (int p = 0; p < 8; p++) {
            // forward
            for (int j = 0; j < nhid; j++) {
                double s = 0.0;
                for (int i = 0; i < nin; i++) {
                    s += pattern[p][i] * w1[i][j];
                }
                hid[j] = sigmoid(s);
            }
            for (int k = 0; k < nout; k++) {
                double s = 0.0;
                for (int j = 0; j < nhid; j++) {
                    s += hid[j] * w2[j][k];
                }
                out[k] = sigmoid(s);
            }
            // backward
            for (int k = 0; k < nout; k++) {
                double target = pattern[p][k];
                double diff = target - out[k];
                error += diff * diff;
                dOut[k] = diff * out[k] * (1.0 - out[k]);
            }
            for (int j = 0; j < nhid; j++) {
                double s = 0.0;
                for (int k = 0; k < nout; k++) {
                    s += dOut[k] * w2[j][k];
                }
                dHid[j] = s * hid[j] * (1.0 - hid[j]);
            }
            for (int j = 0; j < nhid; j++) {
                for (int k = 0; k < nout; k++) {
                    w2[j][k] += rate * dOut[k] * hid[j];
                }
            }
            for (int i = 0; i < nin; i++) {
                for (int j = 0; j < nhid; j++) {
                    w1[i][j] += rate * dHid[j] * pattern[p][i];
                }
            }
        }
        lastError = error;
    }
    sinkd(lastError);
    double h = 0.0;
    for (int i = 0; i < nin; i++) {
        for (int j = 0; j < nhid; j++) {
            h = h * 1.0000001 + w1[i][j];
        }
    }
    sinkd(h);
}
"""
