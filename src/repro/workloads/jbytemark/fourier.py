"""jBYTEmark Fourier: numeric integration of Fourier coefficients.

Double-precision transcendental code; almost all integer work is loop
control, so few extensions exist at all (the paper shows Fourier with
the smallest absolute counts).
"""

DESCRIPTION = "Fourier coefficients of (x+1)^x by trapezoid integration"

SOURCE = """
double thefunction(double x, double omega_n, int select) {
    // select: 0 -> f(x), 1 -> f(x)*cos(w*x), 2 -> f(x)*sin(w*x)
    double base = Math.pow(x + 1.0, x);
    if (select == 1) {
        return base * Math.cos(omega_n * x);
    }
    if (select == 2) {
        return base * Math.sin(omega_n * x);
    }
    return base;
}

double trapezoidIntegrate(double x0, double x1, int nsteps,
                          double omega_n, int select) {
    double x = x0;
    double dx = (x1 - x0) / (double) nsteps;
    double rvalue = thefunction(x0, omega_n, select) / 2.0;
    int n = nsteps;
    if (n != 1) {
        x = x + dx;
        while (n > 1) {
            rvalue = rvalue + thefunction(x, omega_n, select);
            x = x + dx;
            n--;
        }
    }
    rvalue = (rvalue + thefunction(x1, omega_n, select) / 2.0) * dx;
    return rvalue;
}

void main() {
    int ncoeffs = 10;
    double[] abase = new double[ncoeffs];
    double[] bbase = new double[ncoeffs];
    for (int iter = 0; iter < 2; iter++) {
        double omega = 3.1415926535897932 / 1.0;
        abase[0] = trapezoidIntegrate(0.0, 2.0, 40, omega, 0) / 2.0;
        bbase[0] = 0.0;
        for (int i = 1; i < ncoeffs; i++) {
            double omega_n = omega * (double) i;
            abase[i] = trapezoidIntegrate(0.0, 2.0, 40, omega_n, 1);
            bbase[i] = trapezoidIntegrate(0.0, 2.0, 40, omega_n, 2);
        }
        double h = 0.0;
        for (int i = 0; i < ncoeffs; i++) {
            h = h * 1.0001 + abase[i] - bbase[i];
        }
        sinkd(h);
    }
}
"""
