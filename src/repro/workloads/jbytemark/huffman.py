"""jBYTEmark Huffman: build a Huffman tree, encode and decode.

Tree stored as parallel int arrays; encoding emits bits into a byte
buffer.  Byte loads, bit shifting, and table-driven indexing make this
the benchmark where the paper's Figure 13 shows the largest speedup.
"""

DESCRIPTION = "Huffman tree build + encode/decode of a byte buffer"

SOURCE = """
int buildTree(int[] freq, int[] left, int[] right, int[] parent, int nsym) {
    // Returns the root node index.  Nodes 0..nsym-1 are leaves.
    int nodes = nsym;
    int[] weight = new int[nsym * 2];
    boolean[] used = new boolean[nsym * 2];
    for (int i = 0; i < nsym; i++) {
        weight[i] = freq[i];
        used[i] = freq[i] == 0;
    }
    for (int i = 0; i < nsym * 2; i++) {
        left[i] = -1;
        right[i] = -1;
        parent[i] = -1;
    }
    while (true) {
        int a = -1;
        int b = -1;
        for (int i = 0; i < nodes; i++) {
            if (used[i]) { continue; }
            if (a < 0 || weight[i] < weight[a]) {
                b = a;
                a = i;
            } else if (b < 0 || weight[i] < weight[b]) {
                b = i;
            }
        }
        if (b < 0) {
            return a;
        }
        int m = nodes;
        nodes++;
        weight[m] = weight[a] + weight[b];
        left[m] = a;
        right[m] = b;
        parent[a] = m;
        parent[b] = m;
        used[a] = true;
        used[b] = true;
        used[m] = false;
    }
    return -1;
}

int encode(byte[] data, int[] parent, int[] left, byte[] bits, int nsym) {
    int bitpos = 0;
    int[] path = new int[64];
    for (int i = 0; i < data.length; i++) {
        int sym = data[i] & 0xff;
        if (sym >= nsym) { sym = nsym - 1; }
        // Walk to the root recording branch directions.
        int depth = 0;
        int node = sym;
        while (parent[node] >= 0) {
            int p = parent[node];
            path[depth] = (left[p] == node) ? 0 : 1;
            depth++;
            node = p;
        }
        // Emit most-significant (root-side) bit first.
        for (int d = depth - 1; d >= 0; d--) {
            int byteIndex = bitpos >>> 3;
            if (path[d] != 0) {
                bits[byteIndex] = (byte) (bits[byteIndex] | (1 << (bitpos & 7)));
            }
            bitpos++;
        }
    }
    return bitpos;
}

int decode(byte[] bits, int nbits, int root, int[] left, int[] right,
           byte[] out) {
    int node = root;
    int count = 0;
    for (int pos = 0; pos < nbits; pos++) {
        int bit = (bits[pos >>> 3] >> (pos & 7)) & 1;
        node = (bit == 0) ? left[node] : right[node];
        if (left[node] < 0) {
            out[count] = (byte) node;
            count++;
            node = root;
        }
    }
    return count;
}

void main() {
    int nsym = 64;
    int len = 400;
    byte[] data = new byte[len];
    int seed = 555;
    for (int i = 0; i < len; i++) {
        seed = seed * 1103515245 + 12345;
        int r = (seed >>> 16) & 0xfff;
        // Skewed distribution so the tree is interesting.
        int sym = 0;
        while (r >= (1 << (6 - sym)) && sym < 63) {
            r -= 1 << (6 - sym);
            sym++;
        }
        data[i] = (byte) (sym & 63);
    }
    int[] freq = new int[nsym];
    for (int i = 0; i < len; i++) {
        freq[data[i] & 0xff]++;
    }
    int[] left = new int[nsym * 2];
    int[] right = new int[nsym * 2];
    int[] parent = new int[nsym * 2];
    int root = buildTree(freq, left, right, parent, nsym);
    byte[] bits = new byte[len * 4];
    byte[] out = new byte[len];
    for (int iter = 0; iter < 2; iter++) {
        for (int i = 0; i < bits.length; i++) {
            bits[i] = 0;
        }
        int nbits = encode(data, parent, left, bits, nsym);
        int decoded = decode(bits, nbits, root, left, right, out);
        sink(nbits);
        sink(decoded);
        int bad = 0;
        for (int i = 0; i < decoded; i++) {
            if (out[i] != data[i]) { bad++; }
        }
        sink(bad);
    }
}
"""
