"""jBYTEmark String Sort: sorting fixed-width byte strings.

Byte-array traffic: every comparison loads ``byte`` elements, which on
IA64 zero-extend and need ``extend8`` for the Java ``byte`` value —
exercising the 8-bit elimination path alongside the 32-bit one.
"""

DESCRIPTION = "insertion sort of fixed-width byte strings via an index array"

SOURCE = """
int gseed = 24601;

int nextRand() {
    int s = gseed * 69069 + 1;
    gseed = s;
    return (s >>> 8) & 0x7fffffff;
}

// Strings live in one pool: string k occupies bytes [k*8, k*8+8).
int compareStrings(byte[] pool, int x, int y) {
    int bx = x * 8;
    int by = y * 8;
    for (int i = 0; i < 8; i++) {
        int cx = pool[bx + i] & 0xff;
        int cy = pool[by + i] & 0xff;
        if (cx != cy) {
            return cx - cy;
        }
    }
    return 0;
}

void sortIndices(byte[] pool, int[] order, int count) {
    for (int i = 1; i < count; i++) {
        int key = order[i];
        int j = i - 1;
        while (j >= 0 && compareStrings(pool, order[j], key) > 0) {
            order[j + 1] = order[j];
            j--;
        }
        order[j + 1] = key;
    }
}

void main() {
    int count = 90;
    byte[] pool = new byte[count * 8];
    int[] order = new int[count];
    for (int iter = 0; iter < 1; iter++) {
        for (int k = 0; k < count; k++) {
            order[k] = k;
            for (int i = 0; i < 8; i++) {
                pool[k * 8 + i] = (byte) (65 + nextRand() % 26);
            }
        }
        sortIndices(pool, order, count);
        int bad = 0;
        for (int k = 1; k < count; k++) {
            if (compareStrings(pool, order[k - 1], order[k]) > 0) {
                bad++;
            }
        }
        sink(bad);
        int h = 0;
        for (int k = 0; k < count; k++) {
            h = h * 131 + order[k];
            h = h + pool[order[k] * 8];
        }
        sink(h);
    }
}
"""
