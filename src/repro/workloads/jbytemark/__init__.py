"""jBYTEmark suite stand-ins."""
