"""jBYTEmark Bitfield: bit manipulation over an int bitmap.

Shift/mask-dominated: ``>>> 5`` word indices and ``& 31`` bit offsets
produce values the range analysis proves non-negative, so most index
extensions fall to Theorem 1 (upper-32-zero sources).
"""

DESCRIPTION = "set/clear/toggle bit ranges in an int[] bitmap, then count"

SOURCE = """
void setBit(int[] map, int bit) {
    map[bit >>> 5] = map[bit >>> 5] | (1 << (bit & 31));
}

void clearBit(int[] map, int bit) {
    map[bit >>> 5] = map[bit >>> 5] & ~(1 << (bit & 31));
}

void toggleRange(int[] map, int from, int len) {
    for (int b = from; b < from + len; b++) {
        map[b >>> 5] = map[b >>> 5] ^ (1 << (b & 31));
    }
}

int popCount(int v) {
    int c = 0;
    for (int i = 0; i < 32; i++) {
        c += (v >>> i) & 1;
    }
    return c;
}

void main() {
    int words = 96;
    int bits = words * 32;
    int[] map = new int[words];
    int seed = 99991;
    for (int iter = 0; iter < 2; iter++) {
        for (int i = 0; i < words; i++) {
            map[i] = 0;
        }
        for (int op = 0; op < 120; op++) {
            seed = seed * 1103515245 + 12345;
            int bit = (seed >>> 7) % bits;
            int kind = op % 3;
            if (kind == 0) {
                setBit(map, bit);
            } else if (kind == 1) {
                clearBit(map, bit);
            } else {
                int len = 1 + ((seed >>> 3) & 63);
                if (bit + len > bits) {
                    len = bits - bit;
                }
                toggleRange(map, bit, len);
            }
        }
        int total = 0;
        for (int i = 0; i < words; i++) {
            total += popCount(map[i]);
        }
        sink(total);
    }
}
"""
