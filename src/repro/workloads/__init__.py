"""Benchmark workloads: jBYTEmark and SPECjvm98 stand-ins in J32."""

from .registry import (
    DISPLAY_NAMES,
    JBYTEMARK,
    SPECJVM98,
    Workload,
    all_workloads,
    get_workload,
    jbytemark_workloads,
    specjvm98_workloads,
)

__all__ = [
    "DISPLAY_NAMES",
    "JBYTEMARK",
    "SPECJVM98",
    "Workload",
    "all_workloads",
    "get_workload",
    "jbytemark_workloads",
    "specjvm98_workloads",
]
