"""The on-disk divergence corpus.

Every divergent or crashing seed the campaign finds is persisted as one
JSON file under the corpus directory (default
``~/.cache/repro/fuzz-corpus/``, overridable via ``--corpus-dir`` or
``$REPRO_CACHE_DIR``).  A witness records everything needed to replay
it without the generator: the J32 source itself, the (variant, machine)
cell that diverged, the divergence kind and detail, the generator seed,
and the package version that found it.

Witness ids are content-addressed over ``(source, variant, machine,
kind)``, so re-finding the same divergence on a later run updates the
existing file instead of accumulating duplicates.  Campaigns load the
corpus *first* (regression mode): known witnesses are re-checked before
any new seed is generated, which turns every past miscompile into a
permanent regression test.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..driver.cache import default_cache_dir

SCHEMA_VERSION = 1


def default_corpus_dir() -> Path:
    """``<cache dir>/fuzz-corpus`` — ``~/.cache/repro/fuzz-corpus``."""
    return default_cache_dir() / "fuzz-corpus"


def witness_id(source: str, variant: str, machine: str, kind: str) -> str:
    """Content-addressed id of one (program, cell, kind) divergence."""
    payload = "\x00".join((source, variant, machine, kind))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Witness:
    """One persisted divergence."""

    seed: int
    variant: str
    machine: str
    kind: str
    detail: str
    source: str
    reduced_source: str | None = None
    package_version: str = ""
    created: float = field(default_factory=time.time)
    schema_version: int = SCHEMA_VERSION

    @property
    def id(self) -> str:
        return witness_id(self.source, self.variant, self.machine,
                          self.kind)

    @property
    def best_source(self) -> str:
        """The smallest source known to reproduce the divergence."""
        return self.reduced_source or self.source

    def reduction_ratio(self) -> float | None:
        """``len(reduced)/len(original)``; ``None`` before reduction."""
        if self.reduced_source is None or not self.source:
            return None
        return len(self.reduced_source) / len(self.source)

    def to_dict(self) -> dict:
        document = asdict(self)
        document["id"] = self.id
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "Witness":
        if not isinstance(document, dict):
            raise TypeError(f"witness document must be a dict, "
                            f"not {type(document).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in document.items() if k in known})


class Corpus:
    """All witnesses under one corpus directory."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = (Path(directory) if directory is not None
                          else default_corpus_dir())

    def path_for(self, witness: Witness) -> Path:
        return self.directory / f"{witness.id}.json"

    def add(self, witness: Witness) -> Path:
        """Persist (or update) one witness; returns its file path."""
        if not witness.package_version:
            from .. import __version__

            witness.package_version = __version__
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(witness)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as handle:
            json.dump(witness.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp.replace(path)  # atomic: concurrent campaigns never see halves
        return path

    def entries(self) -> list[Witness]:
        """Every readable witness, oldest first (stable replay order)."""
        if not self.directory.is_dir():
            return []
        witnesses = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                with open(path) as handle:
                    witnesses.append(Witness.from_dict(json.load(handle)))
            except (OSError, ValueError, TypeError):
                continue  # unreadable entries never kill a campaign
        witnesses.sort(key=lambda w: (w.created, w.id))
        return witnesses

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
