"""Differential fuzzing: campaign orchestration, divergence corpus,
delta-debugging reduction.

The subsystem scales the repository's soundness oracle from "a handful
of property-test seeds" to "thousands of generated programs across
every variant and machine lowering", with every divergence persisted,
shrunk to a minimal witness, and replayed as a regression on the next
run.  See docs/FUZZING.md for the workflow and ``repro fuzz --help``
for the CLI.
"""

from .campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    FRONTEND_VARIANT,
    run_campaign,
)
from .corpus import Corpus, Witness, default_corpus_dir, witness_id
from .oracle import (
    ALL_KINDS,
    KIND_COST,
    KIND_CRASH,
    KIND_HEAP,
    KIND_LOWERING,
    KIND_OUTPUT,
    KIND_TRAP,
    Observation,
    check_compiled,
    check_cost_model,
    check_lowering,
    compare_observations,
    observe,
)
from .reducer import ReductionResult, reduce_source

__all__ = [
    "ALL_KINDS",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "Corpus",
    "FRONTEND_VARIANT",
    "KIND_COST",
    "KIND_CRASH",
    "KIND_HEAP",
    "KIND_LOWERING",
    "KIND_OUTPUT",
    "KIND_TRAP",
    "Observation",
    "ReductionResult",
    "Witness",
    "check_compiled",
    "check_cost_model",
    "check_lowering",
    "compare_observations",
    "default_corpus_dir",
    "observe",
    "reduce_source",
    "run_campaign",
    "witness_id",
]
