"""The fuzzing campaign orchestrator.

One :class:`Campaign` run turns the repository's strongest soundness
check — "no variant may change observable behaviour" — into a scalable
batch process:

1. **regression phase** — every witness already in the divergence
   corpus is replayed first, so a previously-found miscompile that
   resurfaces is reported before any new seed is spent;
2. **generation** — seeded J32 programs come from
   :mod:`repro.testing.genprog` (same seed, same program, forever);
3. **compilation** — every (program, variant, machine) cell fans out
   over the existing :class:`~repro.driver.BatchCompiler` process pool;
4. **oracle** — each cell is checked against the gold run
   (:mod:`repro.fuzz.oracle`): output, trap behaviour, heap state,
   lowering and cost-model consistency;
5. **reduction + persistence** — divergent seeds are shrunk by the
   delta-debugging reducer and written to the corpus with full
   metadata.

Progress is observable through ``fuzz.campaign.*`` counters and
per-stage spans when a :class:`~repro.telemetry.Telemetry` object is
attached (see docs/TELEMETRY.md); without one the campaign still keeps
its own private registry so :class:`CampaignResult.stats` is always
populated.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field, replace

from ..core.config import SignExtConfig, VARIANTS
from ..core.pipeline import compile_ir
from ..driver import BatchCompiler, CompileJob
from ..frontend import compile_source
from ..machine import MACHINES
from ..telemetry import Telemetry
from ..telemetry.metrics import MetricsRegistry
from ..testing import generate_program
from .corpus import Corpus, Witness
from .oracle import KIND_CRASH, check_compiled, observe
from .reducer import reduce_source

#: Pseudo-variant recorded when the *frontend* rejects or crashes on a
#: generated program (no real variant/machine cell is involved).
FRONTEND_VARIANT = "<frontend>"


@dataclass(frozen=True)
class CampaignConfig:
    """Every knob of one fuzzing campaign."""

    #: number of seeds to fuzz (seed values are consecutive)
    seeds: int = 1000
    #: first seed value (campaigns shard the seed space by offsetting)
    seed_start: int = 0
    #: process-pool width for the batch compiler
    jobs: int = 1
    #: wall-clock budget in seconds (``None`` = unbounded)
    time_budget: float | None = None
    #: corpus location (``None`` = ``~/.cache/repro/fuzz-corpus``)
    corpus_dir: str | None = None
    #: variant names to differentiate (default: all 12 table rows)
    variants: tuple[str, ...] = tuple(VARIANTS)
    #: machine models to cross-check (default: both lowerings)
    machines: tuple[str, ...] = ("ia64", "ppc64")
    #: interpreter step budget per execution
    fuel: int = 2_000_000
    #: shrink each new witness with the delta-debugging reducer
    reduce: bool = True
    #: predicate-evaluation budget per reduction
    reduce_attempts: int = 1500
    #: fault injection: compile with ``debug_skip_def_check`` set, so the
    #: campaign must find (and reduce) the resulting miscompiles
    inject_bug: bool = False
    #: replay corpus witnesses before fuzzing new seeds
    replay_corpus: bool = True
    #: only replay the corpus; generate no new seeds
    replay_only: bool = False
    #: stop after this many new divergences (``None`` = keep going)
    max_divergences: int | None = None
    #: seeds generated/compiled per driver batch
    batch_seeds: int = 8
    #: execution engine for every interpreter run; ``"both"`` also
    #: cross-checks reference/closure/codegen parity (a three-way
    #: vote) on every compiled cell
    engine: str = "closure"
    #: write an execution-profile artifact of every new witness's gold
    #: run under this directory (divergence triage: the profile shows
    #: which blocks the diverging program actually exercises)
    profile_dir: str | None = None

    def __post_init__(self) -> None:
        for name in self.variants:
            if name not in VARIANTS:
                raise ValueError(f"unknown variant: {name!r}")
        for name in self.machines:
            if name not in MACHINES:
                raise ValueError(f"unknown machine: {name!r}")
        if self.seeds < 0:
            raise ValueError("seeds must be >= 0")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.engine not in ("closure", "reference", "codegen", "both"):
            raise ValueError(f"unknown engine: {self.engine!r}")

    def cell_configs(self) -> list[tuple[str, str, SignExtConfig]]:
        """``(variant, machine, config)`` for every differential cell."""
        cells = []
        for machine in self.machines:
            traits = MACHINES[machine]
            for variant in self.variants:
                config = VARIANTS[variant].with_traits(traits)
                if self.inject_bug:
                    config = replace(config, debug_skip_def_check=True)
                cells.append((variant, machine, config))
        return cells


@dataclass
class CampaignResult:
    """Everything one campaign run established."""

    seeds_run: int = 0
    cells_checked: int = 0
    #: new witnesses found this run (persisted to the corpus)
    divergences: list[Witness] = field(default_factory=list)
    regressions_checked: int = 0
    #: corpus witnesses that still reproduce a divergence
    regressions_failing: int = 0
    skipped_seeds: int = 0
    duration: float = 0.0
    budget_exhausted: bool = False
    corpus_dir: str = ""
    #: ``fuzz.campaign.*`` counter snapshot
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No new divergence and no still-failing regression."""
        return not self.divergences and self.regressions_failing == 0

    def divergence_kinds(self) -> dict[str, int]:
        kinds: dict[str, int] = {}
        for witness in self.divergences:
            kinds[witness.kind] = kinds.get(witness.kind, 0) + 1
        return kinds

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seeds_run": self.seeds_run,
            "cells_checked": self.cells_checked,
            "divergences": [w.to_dict() for w in self.divergences],
            "divergence_kinds": self.divergence_kinds(),
            "regressions_checked": self.regressions_checked,
            "regressions_failing": self.regressions_failing,
            "skipped_seeds": self.skipped_seeds,
            "duration": self.duration,
            "budget_exhausted": self.budget_exhausted,
            "corpus_dir": self.corpus_dir,
            "stats": dict(self.stats),
        }


def _batches(start: int, count: int, size: int):
    position = start
    end = start + count
    while position < end:
        yield range(position, min(position + size, end))
        position = min(position + size, end)


class Campaign:
    """Drives one differential fuzzing campaign."""

    def __init__(self, config: CampaignConfig | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.config = config if config is not None else CampaignConfig()
        self.telemetry = telemetry
        self.metrics = (telemetry.metrics if telemetry is not None
                        else MetricsRegistry())
        self.corpus = Corpus(self.config.corpus_dir)

    # -- small helpers -------------------------------------------------------

    def _span(self, name: str, **args):
        if self.telemetry is None:
            return contextlib.nullcontext()
        return self.telemetry.span(name, category="fuzz", **args)

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        self.metrics.counter(f"fuzz.campaign.{name}", **labels).inc(amount)

    # -- the campaign --------------------------------------------------------

    def run(self) -> CampaignResult:
        config = self.config
        started = time.monotonic()
        deadline = (started + config.time_budget
                    if config.time_budget is not None else None)
        result = CampaignResult(corpus_dir=str(self.corpus.directory))
        cells = config.cell_configs()

        with self._span("fuzz.campaign", seeds=config.seeds,
                        cells=len(cells)):
            driver = BatchCompiler(jobs=config.jobs, metrics=self.metrics)
            with driver:
                if config.replay_corpus or config.replay_only:
                    self._replay_corpus(result, deadline)
                if not config.replay_only:
                    self._fuzz_new_seeds(driver, cells, result, deadline)

        result.duration = time.monotonic() - started
        result.stats = self._stats_snapshot()
        return result

    def _stats_snapshot(self) -> dict[str, int]:
        counters = self.metrics.as_dict()["counters"]
        return {name: value for name, value in counters.items()
                if name.startswith("fuzz.campaign.")}

    # -- regression phase ----------------------------------------------------

    def _replay_corpus(self, result: CampaignResult,
                       deadline: float | None) -> None:
        entries = self.corpus.entries()
        with self._span("fuzz.replay", witnesses=len(entries)):
            for witness in entries:
                if deadline is not None and time.monotonic() > deadline:
                    result.budget_exhausted = True
                    self._count("budget_exhausted")
                    return
                result.regressions_checked += 1
                self._count("regressions_checked")
                status = self._replay_witness(witness)
                if status == "failing":
                    result.regressions_failing += 1
                    self._count("regressions_failing")
                    result.divergences.append(witness)
                elif status == "stale":
                    self._count("regressions_stale")

    def _replay_witness(self, witness: Witness) -> str:
        """``failing`` | ``passing`` | ``stale`` for one corpus entry."""
        if witness.variant == FRONTEND_VARIANT:
            return ("failing" if not self._compiles(witness.best_source)
                    else "passing")
        if witness.variant not in VARIANTS or \
                witness.machine not in MACHINES:
            return "stale"
        for source in dict.fromkeys((witness.best_source, witness.source)):
            if self._source_diverges(source, witness.variant,
                                     witness.machine,
                                     expected_kind=None):
                return "failing"
        return "passing"

    @staticmethod
    def _compiles(source: str) -> bool:
        try:
            compile_source(source, "witness")
        except Exception:
            return False
        return True

    def _source_diverges(self, source: str, variant: str, machine: str,
                         expected_kind: str | None) -> bool:
        """Replay one cell; True when a divergence (re)appears.

        ``expected_kind`` restricts to the original divergence kind —
        the reducer uses that so shrinking cannot wander from, say, a
        heap divergence to an unrelated trap.
        """
        config = VARIANTS[variant].with_traits(MACHINES[machine])
        if self.config.inject_bug:
            config = replace(config, debug_skip_def_check=True)
        try:
            program = compile_source(source, "witness")
        except Exception:
            return False  # not even a frontend-valid program
        if "main" not in program.functions:
            return False  # the reducer deleted the entry point
        gold = observe(program, mode="ideal", fuel=self.config.fuel,
                       engine=self.config.engine)
        try:
            compiled = compile_ir(program, config)
        except Exception:
            return expected_kind in (None, KIND_CRASH)
        divergence = check_compiled(gold, compiled.program, config.traits,
                                    self.config.fuel,
                                    engine=self.config.engine)
        if divergence is None:
            return False
        return expected_kind is None or divergence[0] == expected_kind

    # -- fuzzing phase -------------------------------------------------------

    def _fuzz_new_seeds(self, driver: BatchCompiler, cells,
                        result: CampaignResult,
                        deadline: float | None) -> None:
        config = self.config
        for batch in _batches(config.seed_start, config.seeds,
                              config.batch_seeds):
            if deadline is not None and time.monotonic() > deadline:
                result.budget_exhausted = True
                self._count("budget_exhausted")
                return
            if config.max_divergences is not None and \
                    len(result.divergences) >= config.max_divergences:
                return
            self._run_batch(driver, cells, list(batch), result)

    def _run_batch(self, driver: BatchCompiler, cells, seeds: list[int],
                   result: CampaignResult) -> None:
        config = self.config
        ready = []  # (seed, source, program, gold)
        with self._span("fuzz.generate", seeds=len(seeds)):
            for seed in seeds:
                result.seeds_run += 1
                self._count("seeds")
                source = generate_program(seed)
                self._count("generated")
                try:
                    program = compile_source(source, f"fuzz{seed}")
                except Exception as exc:
                    self._count("frontend_crashes")
                    self._record_divergence(
                        result, seed, source, FRONTEND_VARIANT, "*",
                        KIND_CRASH,
                        f"frontend raised {type(exc).__name__}: {exc}")
                    continue
                gold = observe(program, mode="ideal", fuel=config.fuel,
                               engine=config.engine)
                self._count("gold_runs")
                if gold.status == "fuel":
                    # A seed the budget cannot execute teaches nothing.
                    result.skipped_seeds += 1
                    self._count("skipped", reason="gold-fuel")
                    continue
                ready.append((seed, source, program, gold))

        jobs = []
        meta = []  # parallel to jobs: (seed, source, gold, cell)
        for seed, source, program, gold in ready:
            for variant, machine, cell_config in cells:
                jobs.append(CompileJob(
                    label=f"fuzz{seed}:{variant}@{machine}",
                    program=program,
                    config=cell_config,
                ))
                meta.append((seed, source, gold, variant, machine,
                             cell_config))

        with self._span("fuzz.compile", jobs=len(jobs)):
            compiled = self._compile_jobs(driver, jobs, meta, result)

        with self._span("fuzz.check", cells=len(compiled)):
            for (seed, source, gold, variant, machine,
                 cell_config), outcome in compiled:
                if self.config.max_divergences is not None and \
                        len(result.divergences) >= \
                        self.config.max_divergences:
                    return
                result.cells_checked += 1
                self._count("cells")
                divergence = check_compiled(gold, outcome.program,
                                            cell_config.traits,
                                            config.fuel,
                                            engine=config.engine)
                if divergence is not None:
                    self._record_divergence(result, seed, source, variant,
                                            machine, *divergence)

    def _compile_jobs(self, driver: BatchCompiler, jobs, meta, result):
        """Compile the batch; a crashing cell becomes a witness, not an
        aborted campaign."""
        try:
            results = driver.compile_batch(jobs)
            return list(zip(meta, results))
        except Exception:
            pass  # at least one cell crashes the pipeline: isolate it
        compiled = []
        for job, info in zip(jobs, meta):
            seed, source, gold, variant, machine, cell_config = info
            try:
                compiled.append((info, driver.compile_one(job)))
            except Exception as exc:
                self._count("compile_crashes")
                self._record_divergence(
                    result, seed, source, variant, machine, KIND_CRASH,
                    f"pipeline raised {type(exc).__name__}: {exc}")
        return compiled

    # -- divergence handling -------------------------------------------------

    def _record_divergence(self, result: CampaignResult, seed: int,
                           source: str, variant: str, machine: str,
                           kind: str, detail: str) -> None:
        self._count("divergences", kind=kind)
        witness = Witness(seed=seed, variant=variant, machine=machine,
                          kind=kind, detail=detail, source=source)
        if self.config.reduce:
            self._reduce_witness(witness)
        with self._span("fuzz.persist"):
            self.corpus.add(witness)
        if self.config.profile_dir is not None:
            self._profile_witness(witness)
        result.divergences.append(witness)

    def _profile_witness(self, witness: Witness) -> None:
        """Best-effort hotness profile of the witness's gold run.

        Frontend witnesses have no executable program, and a crashing
        gold run has no successful execution to profile; both simply
        skip (a missing triage aid must never fail the campaign).
        """
        if witness.variant == FRONTEND_VARIANT:
            return
        from ..interp import execute
        from ..profile import artifact_path, build_profile, write_profile

        try:
            program = compile_source(witness.source, f"witness{witness.id}")
            run = execute(program, engine=self.config.engine, mode="ideal",
                          fuel=self.config.fuel, collect_profile=True)
            profile = build_profile(
                program, run, engine=self.config.engine,
                variant=witness.variant, machine=witness.machine,
                workload=f"witness-{witness.id}",
            )
            write_profile(profile, artifact_path(
                self.config.profile_dir, "witness", str(witness.id)))
            self._count("witness_profiles")
        except Exception:
            self._count("witness_profile_failures")

    def _reduce_witness(self, witness: Witness) -> None:
        if witness.variant == FRONTEND_VARIANT:
            def still_fails(source: str) -> bool:
                return not self._compiles(source)
        else:
            def still_fails(source: str) -> bool:
                return self._source_diverges(
                    source, witness.variant, witness.machine,
                    expected_kind=witness.kind)
        with self._span("fuzz.reduce", witness=witness.id):
            reduction = reduce_source(
                witness.source, still_fails,
                max_attempts=self.config.reduce_attempts)
        self._count("reduce_attempts", reduction.attempts)
        if reduction.reproduced and \
                len(reduction.reduced) < len(witness.source):
            witness.reduced_source = reduction.reduced
            self._count("reduced")


def run_campaign(config: CampaignConfig | None = None,
                 telemetry: Telemetry | None = None) -> CampaignResult:
    """Run one fuzzing campaign (see :class:`CampaignConfig`)."""
    return Campaign(config, telemetry).run()
