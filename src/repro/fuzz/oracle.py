"""The differential oracle of the fuzzing campaign.

One generated J32 program is executed once under ideal (pre-conversion)
semantics — the *gold* run — and once per (variant, machine) cell with
machine-faithful semantics.  Every cell must reproduce the gold run's

* observable output — the SINK checksum and the return value;
* trap behaviour — the same trap (or absence of one), with the same
  message; and
* heap state — every array's element type and final cells.

Beyond behavioural equivalence, each cell's machine lowering and cost
model must be *internally consistent*: the lowered text contains exactly
one sign-extension instruction per IR ``EXTEND``, one bounds check per
array access, and the modelled cycle report agrees with the
interpreter's dynamic extension counts.  An inconsistency there cannot
miscompile anything, but it silently corrupts the paper's measurements,
so the campaign treats it as a divergence too.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp import DEFAULT_ENGINE, Interpreter, create_interpreter
from ..interp.memory import FuelExhausted, MemoryFault, Trap
from ..ir.function import Program
from ..ir.opcodes import Opcode
from ..machine.costs import count_cycles
from ..machine.lower import lower_function
from ..machine.model import IA64, MachineTraits

#: Divergence kinds, from most to least alarming.
KIND_CRASH = "crash"        # the compiler raised while compiling the seed
KIND_TRAP = "trap"          # trap/fault/fuel behaviour changed
KIND_OUTPUT = "output"      # checksum or return value changed
KIND_HEAP = "heap"          # final heap state changed
KIND_ENGINE = "engine"      # closure engine disagrees with the reference
KIND_LOWERING = "lowering"  # machine lowering internally inconsistent
KIND_COST = "cost"          # cost model disagrees with dynamic counts

ALL_KINDS = (KIND_CRASH, KIND_TRAP, KIND_OUTPUT, KIND_HEAP,
             KIND_ENGINE, KIND_LOWERING, KIND_COST)

#: Lowered mnemonics that realize an IR sign extension (IA64 / PPC64).
_SIGN_EXT_MNEMONICS = frozenset(
    {"sxt1", "sxt2", "sxt4", "extsb", "extsh", "extsw"}
)
#: Lowered mnemonics that realize an array bounds check.
_BOUNDS_MNEMONICS = frozenset({"cmp4.ltu", "cmplw"})


@dataclass(frozen=True)
class Observation:
    """Everything one execution exposes to the oracle."""

    #: ``ok`` | ``trap`` | ``fault`` | ``fuel``
    status: str
    checksum: int | None
    ret_value: int | float | None
    #: ``((elem, cells), ...)`` for every allocated array, in
    #: allocation order; empty unless the run completed.
    heap: tuple
    #: stringified trap for non-``ok`` statuses
    trap: str | None
    steps: int
    extends32: int

    def observable(self) -> tuple:
        return (self.status, self.checksum, self.ret_value, self.trap)


def snapshot_heap(interp: Interpreter) -> tuple:
    """The comparable final heap state of a completed run."""
    return tuple(
        (array.elem.value, tuple(array.cells))
        for array in interp.heap._arrays
    )


def observe(program: Program, *, mode: str = "machine",
            traits: MachineTraits = IA64,
            fuel: int = 2_000_000,
            engine: str = DEFAULT_ENGINE) -> Observation:
    """Execute ``program`` and capture an :class:`Observation`."""
    observation, _ = _observe(program, mode, traits, fuel, engine)
    return observation


def _observe(program: Program, mode: str, traits: MachineTraits,
             fuel: int,
             engine: str = DEFAULT_ENGINE) -> tuple[Observation, object | None]:
    """Observation plus the raw :class:`ExecResult` when the run is ok."""
    if engine == "both":  # one execution per observation; parity is
        engine = "closure"  # checked separately by engine_cross_check
    interp = create_interpreter(program, engine=engine, mode=mode,
                                traits=traits, fuel=fuel)
    try:
        result = interp.run()
    except FuelExhausted as exc:
        return Observation("fuel", None, None, (), str(exc),
                           interp.steps, 0), None
    except MemoryFault as exc:
        return Observation("fault", None, None, (),
                           f"{type(exc).__name__}: {exc}",
                           interp.steps, 0), None
    except Trap as exc:
        return Observation("trap", None, None, (),
                           f"{type(exc).__name__}: {exc}",
                           interp.steps, 0), None
    return Observation(
        status="ok",
        checksum=result.checksum,
        ret_value=result.ret_value,
        heap=snapshot_heap(interp),
        trap=None,
        steps=result.steps,
        extends32=result.extends32,
    ), result


def compare_observations(gold: Observation,
                         candidate: Observation) -> tuple[str, str] | None:
    """``(kind, detail)`` when the candidate diverges; ``None`` if not."""
    if gold.status != candidate.status:
        return (KIND_TRAP,
                f"gold finished {gold.status} ({gold.trap or 'no trap'}) "
                f"but variant finished {candidate.status} "
                f"({candidate.trap or 'no trap'})")
    if gold.status != "ok":
        if gold.trap != candidate.trap:
            return (KIND_TRAP,
                    f"trap changed: gold {gold.trap!r} vs "
                    f"variant {candidate.trap!r}")
        return None
    if (gold.checksum, gold.ret_value) != \
            (candidate.checksum, candidate.ret_value):
        return (KIND_OUTPUT,
                f"gold (checksum={gold.checksum:#x}, "
                f"ret={gold.ret_value!r}) vs variant "
                f"(checksum={candidate.checksum:#x}, "
                f"ret={candidate.ret_value!r})")
    if gold.heap != candidate.heap:
        return (KIND_HEAP, _heap_diff(gold.heap, candidate.heap))
    return None


def _heap_diff(gold: tuple, candidate: tuple) -> str:
    if len(gold) != len(candidate):
        return (f"allocated {len(candidate)} arrays, gold allocated "
                f"{len(gold)}")
    for ref, ((gelem, gcells), (celem, ccells)) in enumerate(
            zip(gold, candidate), start=1):
        if gelem != celem:
            return f"array #{ref} element type {celem} vs gold {gelem}"
        if len(gcells) != len(ccells):
            return (f"array #{ref} length {len(ccells)} vs gold "
                    f"{len(gcells)}")
        for index, (gv, cv) in enumerate(zip(gcells, ccells)):
            if gv != cv:
                return (f"array #{ref}[{index}] = {cv!r}, gold {gv!r}")
    return "heap states differ"


def check_cost_model(program: Program, result,
                     traits: MachineTraits) -> str | None:
    """Internal consistency of the cycle cost model for one run."""
    try:
        report = count_cycles(program, result, traits)
    except KeyError as exc:
        return f"cost table has no entry for opcode {exc}"
    expected_extend = result.total_extends * traits.extend_cost
    if abs(report.extend_cycles - expected_extend) > 1e-6:
        return (f"extend cycles {report.extend_cycles} != dynamic "
                f"extends {result.total_extends} x cost "
                f"{traits.extend_cost}")
    if report.extend_cycles > report.total + 1e-6:
        return (f"extend cycles {report.extend_cycles} exceed total "
                f"{report.total}")
    if result.steps > 0 and report.total <= 0.0:
        return f"{result.steps} steps executed but zero modelled cycles"
    return None


def check_lowering(program: Program, traits: MachineTraits) -> str | None:
    """Internal consistency of the machine lowering for one program."""
    for func in program.functions.values():
        try:
            code = lower_function(func, traits)
        except Exception as exc:  # pragma: no cover - lowering bug
            return f"{func.name}: lowering raised {type(exc).__name__}: {exc}"
        extends = 0
        arrays = 0
        for _, instr in func.instructions():
            if instr.is_extend:
                extends += 1
            elif instr.opcode in (Opcode.ALOAD, Opcode.ASTORE):
                arrays += 1
        lowered_extends = sum(code.counts.get(m, 0)
                              for m in _SIGN_EXT_MNEMONICS)
        if lowered_extends != extends:
            return (f"{func.name}: {lowered_extends} lowered sign "
                    f"extensions for {extends} EXTEND instructions "
                    f"({traits.name})")
        bounds = sum(code.counts.get(m, 0) for m in _BOUNDS_MNEMONICS)
        if bounds != arrays:
            return (f"{func.name}: {bounds} bounds checks for {arrays} "
                    f"array accesses ({traits.name})")
    return None


def engine_cross_check(program: Program, *, mode: str = "machine",
                       traits: MachineTraits = IA64,
                       fuel: int = 2_000_000) -> tuple[str, str] | None:
    """Run all three engines over one program and compare everything.

    A three-way vote: the reference interpreter is the baseline, and
    both translated engines (closure and codegen) must agree with it.
    Observable behaviour, trap messages, final heap state, and — when
    both runs complete — the entire ``ExecResult`` (step counts, site/
    opcode/extend counts, profiles) must match bit for bit.  Step counts
    of *failed* runs are deliberately not compared: the translated
    engines only track fuel at segment granularity on exception paths.
    """
    ref_obs, ref_res = _observe(program, mode, traits, fuel,
                                engine="reference")
    for engine in ("closure", "codegen"):
        obs, res = _observe(program, mode, traits, fuel, engine=engine)
        if obs.observable() != ref_obs.observable():
            return (KIND_ENGINE,
                    f"{engine} engine finished {obs.observable()!r} "
                    f"but reference finished {ref_obs.observable()!r}")
        if obs.heap != ref_obs.heap:
            return (KIND_ENGINE,
                    f"final heap differs between {engine} and reference: "
                    + _heap_diff(ref_obs.heap, obs.heap))
        if res is not None and ref_res is not None and res != ref_res:
            return (KIND_ENGINE,
                    "engines agree on observables but ExecResult differs "
                    f"({engine} steps={res.steps} "
                    f"extends={res.extend_counts} vs reference "
                    f"steps={ref_res.steps} "
                    f"extends={ref_res.extend_counts})")
    return None


def check_compiled(gold: Observation, compiled_program: Program,
                   traits: MachineTraits,
                   fuel: int,
                   engine: str = DEFAULT_ENGINE) -> tuple[str, str] | None:
    """Run one compiled cell through every oracle check.

    Returns the first ``(kind, detail)`` divergence, or ``None`` when
    the cell is clean.  Behavioural checks run first — a miscompile is
    more urgent than a measurement inconsistency.  ``engine="both"``
    additionally cross-checks the closure engine against the reference
    interpreter on this cell (:func:`engine_cross_check`).
    """
    candidate, result = _observe(compiled_program, "machine", traits, fuel,
                                 engine)
    divergence = compare_observations(gold, candidate)
    if divergence is not None:
        return divergence
    if engine == "both":
        divergence = engine_cross_check(compiled_program, mode="machine",
                                        traits=traits, fuel=fuel)
        if divergence is not None:
            return divergence
    problem = check_lowering(compiled_program, traits)
    if problem is not None:
        return (KIND_LOWERING, problem)
    if result is not None:
        problem = check_cost_model(compiled_program, result, traits)
        if problem is not None:
            return (KIND_COST, problem)
    return None
