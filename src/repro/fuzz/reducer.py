"""Delta-debugging reduction of divergence witnesses.

Given a J32 source that provokes a divergence and a predicate that
replays it (``still_fails(source) -> bool``), the reducer shrinks the
source to a small witness while the predicate keeps holding.  Three
transformation families run to a combined fixpoint:

* **statement/loop removal** — brace-balanced chunks of lines (a single
  statement, or a whole ``if``/loop with its body) are deleted,
  largest-first, classic ddmin style;
* **block unwrapping** — a loop or conditional header and its closing
  brace are removed while the body is kept, which exposes the body's
  statements to further removal;
* **expression simplification** — innermost parenthesized expressions
  are replaced by one of their operands or by ``0``.

Every candidate is validated by the predicate, which must re-run the
frontend and the differential oracle, so an illegal candidate (deleting
a declaration that is still used, unbalancing braces) is simply
rejected — the reducer never needs to understand J32 scoping itself.
The result is not guaranteed minimal, only small; the campaign's
acceptance bar is a witness no larger than a quarter of the original.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

#: ``(operand) (binop) (operand)`` inside an innermost parenthesis.
_BINOP = re.compile(
    r"^\s*(-?\w+)\s*(\+|-|\*|/|%|&|\||\^|<<|>>>|>>)\s*(-?\w+)\s*$"
)
_INNER_PARENS = re.compile(r"\(([^()]*)\)")


@dataclass
class ReductionResult:
    """Outcome of one reduction."""

    original: str
    reduced: str
    #: predicate evaluations spent
    attempts: int
    #: accepted transformations
    accepted: int
    #: the original source reproduced the divergence at all
    reproduced: bool

    @property
    def ratio(self) -> float:
        """``len(reduced) / len(original)`` (1.0 = no shrink)."""
        if not self.original:
            return 1.0
        return len(self.reduced) / len(self.original)


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _chunks(lines: list[str]) -> list[tuple[int, int]]:
    """Brace-balanced half-open line ranges, innermost-last.

    A line with net-zero brace delta is a one-line chunk; a line that
    opens a block yields a chunk running through its matching close.
    """
    deltas = [line.count("{") - line.count("}") for line in lines]
    chunks: list[tuple[int, int]] = []
    for start, delta in enumerate(deltas):
        if not lines[start].strip():
            continue
        if delta == 0:
            chunks.append((start, start + 1))
        elif delta > 0:
            depth = delta
            for end in range(start + 1, len(lines)):
                depth += deltas[end]
                if depth <= 0:
                    chunks.append((start, end + 1))
                    break
    return chunks


def _remove(lines: list[str], chunk: tuple[int, int]) -> list[str]:
    return lines[:chunk[0]] + lines[chunk[1]:]


def _unwrap(lines: list[str], chunk: tuple[int, int]) -> list[str] | None:
    """Drop a block's header and closing brace, keeping the body."""
    start, end = chunk
    if end - start < 3:
        return None
    if "{" not in lines[start] or "}" not in lines[end - 1]:
        return None
    return lines[:start] + lines[start + 1:end - 1] + lines[end:]


def reduce_source(
    source: str,
    still_fails: Callable[[str], bool],
    *,
    max_attempts: int = 3000,
) -> ReductionResult:
    """Shrink ``source`` while ``still_fails`` keeps returning True."""
    budget = _Budget(max_attempts)
    accepted = 0

    budget.take()
    if not still_fails(source):
        return ReductionResult(original=source, reduced=source,
                               attempts=budget.spent, accepted=0,
                               reproduced=False)

    lines = [line for line in source.splitlines() if line.strip()]
    if "\n".join(lines) + "\n" != source:
        # Blank-line normalization must itself keep reproducing.
        budget.take()
        if not still_fails("\n".join(lines) + "\n"):
            lines = source.splitlines()

    def attempt(candidate_lines: list[str]) -> bool:
        nonlocal accepted
        if not budget.take():
            return False
        if still_fails("\n".join(candidate_lines) + "\n"):
            # In-place so every helper holding this list sees the
            # accepted candidate (rebinding would leave
            # _simplify_expressions scanning a stale copy).
            lines[:] = candidate_lines
            accepted += 1
            return True
        return False

    progress = True
    while progress and budget.spent < budget.limit:
        progress = False
        # Phase 1: chunk removal, largest chunks first.
        removed = True
        while removed and budget.spent < budget.limit:
            removed = False
            for chunk in sorted(_chunks(lines),
                                key=lambda c: c[0] - c[1]):
                if attempt(_remove(lines, chunk)):
                    removed = progress = True
                    break
        # Phase 2: block unwrapping (exposes bodies to phase 1).
        unwrapped = True
        while unwrapped and budget.spent < budget.limit:
            unwrapped = False
            for chunk in _chunks(lines):
                candidate = _unwrap(lines, chunk)
                if candidate is not None and attempt(candidate):
                    unwrapped = progress = True
                    break
        # Phase 3: expression simplification, line by line.
        if _simplify_expressions(lines, attempt, budget):
            progress = True

    reduced = "\n".join(lines) + "\n"
    return ReductionResult(original=source, reduced=reduced,
                           attempts=budget.spent, accepted=accepted,
                           reproduced=True)


def _simplify_expressions(lines: list[str], attempt, budget: _Budget) -> bool:
    """Replace innermost parenthesized expressions with something smaller."""
    progress = False
    changed = True
    while changed and budget.spent < budget.limit:
        changed = False
        for index, line in enumerate(lines):
            for match in _INNER_PARENS.finditer(line):
                inner = match.group(1)
                replacements = []
                binop = _BINOP.match(inner)
                if binop is not None:
                    replacements = [binop.group(1), binop.group(3)]
                if inner.strip() != "0":
                    replacements.append("0")
                for replacement in replacements:
                    candidate = list(lines)
                    candidate[index] = (line[:match.start()] + replacement
                                       + line[match.end():])
                    if candidate[index] == line:
                        continue
                    if attempt(candidate):
                        changed = progress = True
                        break
                if changed:
                    break
            if changed:
                break
    return progress
