"""Machine trait descriptions.

The paper evaluates on IA64 (no implicit sign extension: memory reads
zero-extend, so ``sxt`` instructions are needed everywhere) and contrasts
it with PowerPC64 (``lwa`` loads sign-extend 32-bit values implicitly,
``lha`` sign-extends 16-bit values; bytes are zero-extended by ``lbz``).
These traits parameterize 64-bit conversion, the semantic classification
in :mod:`repro.ir.semantics`, the interpreter, and the cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ir.types import ScalarType


class LoadExt(enum.Enum):
    """How a memory load of a narrow value fills the upper register bits."""

    ZERO = "zero"
    SIGN = "sign"


@dataclass(frozen=True)
class MachineTraits:
    """Architecture facts relevant to sign-extension elimination."""

    name: str
    #: Extension applied by the natural load instruction per element width.
    load_ext: dict[ScalarType, LoadExt] = field(default_factory=dict)
    #: 32-bit compare instructions exist (ignore upper 32 bits).  Both the
    #: paper's targets have them; without them, bounds checks and 32-bit
    #: compares would themselves demand canonical inputs.
    has_cmp32: bool = True
    #: Calling convention: narrow integer arguments must be canonical
    #: (sign-extended) when passed, and callees return canonical values.
    abi_canonical_args: bool = True
    abi_canonical_ret: bool = True
    #: Cycle cost of one explicit sign-extension instruction.
    extend_cost: float = 1.0
    #: Whether an address can be formed with shift-and-add in one
    #: instruction once the index needs no explicit extension
    #: (IA64 ``shladd``; PPC64 ``rldic``+add modelled as the same win).
    fused_address_add: bool = True

    def load_extension(self, elem: ScalarType) -> LoadExt:
        return self.load_ext.get(elem, LoadExt.ZERO)


IA64 = MachineTraits(
    name="ia64",
    load_ext={
        ScalarType.I8: LoadExt.ZERO,
        ScalarType.I16: LoadExt.ZERO,
        ScalarType.U16: LoadExt.ZERO,
        ScalarType.I32: LoadExt.ZERO,
        ScalarType.I64: LoadExt.ZERO,
    },
)

PPC64 = MachineTraits(
    name="ppc64",
    load_ext={
        ScalarType.I8: LoadExt.ZERO,  # lbz: no sign-extending byte load
        ScalarType.I16: LoadExt.SIGN,  # lha
        ScalarType.U16: LoadExt.ZERO,  # lhz
        ScalarType.I32: LoadExt.SIGN,  # lwa
        ScalarType.I64: LoadExt.ZERO,
    },
)

MACHINES = {"ia64": IA64, "ppc64": PPC64}
