"""Machine models: IA64- and PPC64-like traits, lowering, cycle costs."""

from .model import IA64, MACHINES, PPC64, LoadExt, MachineTraits

__all__ = ["IA64", "MACHINES", "PPC64", "LoadExt", "MachineTraits"]
