"""Cycle cost model for the performance figures (Figures 13 and 14).

The paper measures wall-clock speedups on an 800 MHz Itanium; we cannot,
so run time is modelled as ``sum(dynamic count x per-instruction
cycles)`` using a coarse Itanium-flavoured cost table.  Absolute numbers
are not meaningful — the *shape* (which variants win, roughly by how
much) is what the figures reproduce.  Explicit sign extensions cost one
cycle each (``sxt4``), which is exactly the quantity the elimination
variants remove.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.interpreter import ExecResult
from ..ir.function import Program
from ..ir.opcodes import Opcode
from .model import MachineTraits

#: Approximate cycles per dynamically executed IR instruction.
DEFAULT_COSTS: dict[Opcode, float] = {
    Opcode.CONST: 1, Opcode.MOV: 1,
    Opcode.EXTEND8: 1, Opcode.EXTEND16: 1, Opcode.EXTEND32: 1,
    Opcode.ZEXT8: 1, Opcode.ZEXT16: 1, Opcode.ZEXT32: 1,
    Opcode.JUST_EXTENDED: 0, Opcode.TRUNC32: 1,
    Opcode.ADD32: 1, Opcode.SUB32: 1, Opcode.NEG32: 1,
    Opcode.AND32: 1, Opcode.OR32: 1, Opcode.XOR32: 1, Opcode.NOT32: 1,
    Opcode.SHL32: 1, Opcode.SHR32: 1, Opcode.USHR32: 1,
    Opcode.MUL32: 3, Opcode.DIV32: 16, Opcode.REM32: 20,
    Opcode.ADD64: 1, Opcode.SUB64: 1, Opcode.NEG64: 1,
    Opcode.AND64: 1, Opcode.OR64: 1, Opcode.XOR64: 1, Opcode.NOT64: 1,
    Opcode.SHL64: 1, Opcode.SHR64: 1, Opcode.USHR64: 1,
    Opcode.MUL64: 3, Opcode.DIV64: 24, Opcode.REM64: 28,
    Opcode.CMP32: 1, Opcode.CMP64: 1, Opcode.CMPF: 2,
    Opcode.FADD: 3, Opcode.FSUB: 3, Opcode.FMUL: 3, Opcode.FDIV: 15,
    Opcode.FREM: 25, Opcode.FNEG: 1, Opcode.FABS: 1, Opcode.FFLOOR: 4,
    Opcode.FSQRT: 20, Opcode.FSIN: 40, Opcode.FCOS: 40, Opcode.FEXP: 40,
    Opcode.FLOG: 40, Opcode.FPOW: 60,
    Opcode.I2D: 4, Opcode.L2D: 4, Opcode.D2I: 4, Opcode.D2L: 4,
    Opcode.NEWARRAY: 100,
    Opcode.ALOAD: 4, Opcode.ASTORE: 3, Opcode.ARRAYLEN: 2,
    Opcode.GLOAD: 2, Opcode.GSTORE: 2,
    Opcode.BR: 1, Opcode.JMP: 1, Opcode.RET: 2, Opcode.CALL: 10,
    Opcode.SINK: 2, Opcode.NOP: 0,
}


@dataclass(frozen=True)
class CycleReport:
    """Modelled cycles for one execution."""

    total: float
    extend_cycles: float

    def improvement_over(self, baseline: "CycleReport") -> float:
        """Per-cent run-time improvement relative to ``baseline``
        (the paper's Figures 13/14 y-axis)."""
        if self.total == 0:
            return 0.0
        return (baseline.total / self.total - 1.0) * 100.0


def count_cycles(program: Program, result: ExecResult,
                 traits: MachineTraits | None = None,
                 costs: dict[Opcode, float] | None = None) -> CycleReport:
    """Total modelled cycles for an execution of ``program``."""
    table = costs or DEFAULT_COSTS
    extend_cost = traits.extend_cost if traits is not None else 1.0
    total = 0.0
    extend_cycles = 0.0
    for func in program.functions.values():
        for _, instr in func.instructions():
            count = result.site_counts.get(instr.uid, 0)
            if not count:
                continue
            if instr.is_extend:
                cycles = count * extend_cost
                extend_cycles += cycles
            else:
                cycles = count * table[instr.opcode]
            total += cycles
    return CycleReport(total=total, extend_cycles=extend_cycles)
