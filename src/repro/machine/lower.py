"""Assembly-flavoured lowering for inspection and static counting.

Produces textual machine instruction sequences in the style of the
paper's Figure 4 — e.g. an IA64 array store lowers to ``sxt4`` +
``shladd`` + ``st4`` when the index still needs an explicit extension,
and to ``shladd`` + ``st4`` once the extension has been eliminated.
This is not an executable backend (the interpreter executes IR); it
exists to show and count the machine-level effect of the optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instruction import Instr
from ..ir.opcodes import Opcode
from ..ir.types import ScalarType
from .model import IA64, LoadExt, MachineTraits

_ELEM_SCALE = {
    ScalarType.I8: 0, ScalarType.I16: 1, ScalarType.U16: 1,
    ScalarType.I32: 2, ScalarType.I64: 3, ScalarType.F64: 3,
    ScalarType.REF: 3,
}

_LOAD_MNEMONIC = {
    "ia64": {0: "ld1", 1: "ld2", 2: "ld4", 3: "ld8"},
    "ppc64": {0: "lbz", 1: "lhz", 2: "lwz", 3: "ld"},
}
_STORE_MNEMONIC = {
    "ia64": {0: "st1", 1: "st2", 2: "st4", 3: "st8"},
    "ppc64": {0: "stb", 1: "sth", 2: "stw", 3: "std"},
}


@dataclass
class MachineCode:
    """Lowered assembly-like text for one function."""

    lines: list[str] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)

    def emit(self, mnemonic: str, operands: str = "") -> None:
        self.lines.append(f"    {mnemonic:10s} {operands}".rstrip())
        self.counts[mnemonic] = self.counts.get(mnemonic, 0) + 1

    def label(self, text: str) -> None:
        self.lines.append(f"{text}:")

    @property
    def text(self) -> str:
        return "\n".join(self.lines)


def lower_function(func: Function, traits: MachineTraits = IA64) -> MachineCode:
    """Lower one (converted) function to assembly-flavoured text."""
    code = MachineCode()
    arch = traits.name
    for block in func.blocks:
        code.label(f"{func.name}.{block.label}")
        for instr in block.instrs:
            _lower_instr(instr, code, traits, arch)
    return code


def _reg(operand) -> str:
    return f"r<{operand.name}>"


def _lower_instr(instr: Instr, code: MachineCode, traits: MachineTraits,
                 arch: str) -> None:
    opcode = instr.opcode
    dest = _reg(instr.dest) if instr.dest is not None else ""
    srcs = [_reg(s) for s in instr.srcs]

    if opcode is Opcode.CONST:
        mnemonic = "movl" if arch == "ia64" else "li"
        code.emit(mnemonic, f"{dest} = {instr.imm!r}")
    elif opcode is Opcode.MOV:
        code.emit("mov", f"{dest} = {srcs[0]}")
    elif opcode in (Opcode.EXTEND8, Opcode.EXTEND16, Opcode.EXTEND32):
        width = {Opcode.EXTEND8: 1, Opcode.EXTEND16: 2, Opcode.EXTEND32: 4}
        if arch == "ia64":
            code.emit(f"sxt{width[opcode]}", f"{dest} = {srcs[0]}")
        else:
            suffix = {1: "b", 2: "h", 4: "w"}[width[opcode]]
            code.emit(f"exts{suffix}", f"{dest} = {srcs[0]}")
    elif opcode in (Opcode.ZEXT8, Opcode.ZEXT16, Opcode.ZEXT32):
        width = {Opcode.ZEXT8: 1, Opcode.ZEXT16: 2, Opcode.ZEXT32: 4}[opcode]
        if arch == "ia64":
            code.emit(f"zxt{width}", f"{dest} = {srcs[0]}")
        else:
            code.emit("rldicl", f"{dest} = {srcs[0]}, 0, {64 - width * 8}")
    elif opcode is Opcode.JUST_EXTENDED:
        pass  # dummy marker: no machine instruction
    elif opcode is Opcode.ALOAD:
        scale = _ELEM_SCALE[instr.elem]
        code.emit("cmp4.ltu" if arch == "ia64" else "cmplw",
                  f"p = {srcs[1]}, len")
        code.emit("br.bounds", "p")
        if arch == "ia64":
            code.emit("shladd", f"rEA = {srcs[1]}, {scale}, {srcs[0]}")
        else:
            code.emit("rldic", f"rT = {srcs[1]}, {scale}, {32 - scale}")
            code.emit("add", f"rEA = rT, {srcs[0]}")
        if arch == "ppc64" and traits.load_extension(instr.elem) is LoadExt.SIGN:
            # lwa / lha: the natural load sign-extends implicitly.
            sign_loads = {1: "lha", 2: "lwa"}
            code.emit(sign_loads.get(scale, _LOAD_MNEMONIC[arch][scale]),
                      f"{dest} = [rEA]")
        else:
            code.emit(_LOAD_MNEMONIC[arch][scale], f"{dest} = [rEA]")
    elif opcode is Opcode.ASTORE:
        scale = _ELEM_SCALE[instr.elem]
        code.emit("cmp4.ltu" if arch == "ia64" else "cmplw",
                  f"p = {srcs[1]}, len")
        code.emit("br.bounds", "p")
        if arch == "ia64":
            code.emit("shladd", f"rEA = {srcs[1]}, {scale}, {srcs[0]}")
        else:
            code.emit("rldic", f"rT = {srcs[1]}, {scale}, {32 - scale}")
            code.emit("add", f"rEA = rT, {srcs[0]}")
        code.emit(_STORE_MNEMONIC[arch][scale], f"[rEA] = {srcs[2]}")
    elif opcode is Opcode.ARRAYLEN:
        code.emit(_LOAD_MNEMONIC[arch][2], f"{dest} = [{srcs[0]} - 8]")
    elif opcode is Opcode.NEWARRAY:
        code.emit("br.call", f"{dest} = rt_newarray({srcs[0]})")
    elif opcode in (Opcode.GLOAD,):
        code.emit(_LOAD_MNEMONIC[arch][_ELEM_SCALE.get(instr.elem, 2)],
                  f"{dest} = [${instr.gname}]")
    elif opcode is Opcode.GSTORE:
        code.emit(_STORE_MNEMONIC[arch][_ELEM_SCALE.get(instr.elem, 2)],
                  f"[${instr.gname}] = {srcs[0]}")
    elif opcode is Opcode.CMP32:
        mnemonic = "cmp4" if arch == "ia64" else "cmpw"
        code.emit(f"{mnemonic}.{instr.cond.value}",
                  f"{dest} = {srcs[0]}, {srcs[1]}")
    elif opcode is Opcode.CMP64:
        mnemonic = "cmp" if arch == "ia64" else "cmpd"
        code.emit(f"{mnemonic}.{instr.cond.value}",
                  f"{dest} = {srcs[0]}, {srcs[1]}")
    elif opcode is Opcode.CMPF:
        code.emit(f"fcmp.{instr.cond.value}", f"{dest} = {srcs[0]}, {srcs[1]}")
    elif opcode is Opcode.BR:
        code.emit("br.cond", f"{srcs[0]} -> {instr.targets[0]} | "
                             f"{instr.targets[1]}")
    elif opcode is Opcode.JMP:
        code.emit("br", f"-> {instr.targets[0]}")
    elif opcode is Opcode.RET:
        code.emit("br.ret", srcs[0] if srcs else "")
    elif opcode is Opcode.CALL:
        args = ", ".join(srcs)
        target = f"{dest} = " if dest else ""
        code.emit("br.call", f"{target}@{instr.callee}({args})")
    elif opcode is Opcode.SINK:
        code.emit("br.call", f"rt_sink({srcs[0]})")
    elif opcode is Opcode.NOP:
        code.emit("nop")
    else:
        operands = ", ".join(srcs)
        code.emit(_ALU_MNEMONIC.get(opcode, opcode.value),
                  f"{dest} = {operands}")


_ALU_MNEMONIC = {
    Opcode.ADD32: "add", Opcode.SUB32: "sub", Opcode.MUL32: "xma.l",
    Opcode.DIV32: "div.call", Opcode.REM32: "rem.call",
    Opcode.NEG32: "sub0", Opcode.AND32: "and", Opcode.OR32: "or",
    Opcode.XOR32: "xor", Opcode.NOT32: "andcm",
    Opcode.SHL32: "dep.z", Opcode.SHR32: "extr", Opcode.USHR32: "extr.u",
    Opcode.ADD64: "add", Opcode.SUB64: "sub", Opcode.MUL64: "xma.l",
    Opcode.DIV64: "div.call", Opcode.REM64: "rem.call",
    Opcode.NEG64: "sub0", Opcode.AND64: "and", Opcode.OR64: "or",
    Opcode.XOR64: "xor", Opcode.NOT64: "andcm",
    Opcode.SHL64: "shl", Opcode.SHR64: "shr", Opcode.USHR64: "shr.u",
    Opcode.FADD: "fadd", Opcode.FSUB: "fsub", Opcode.FMUL: "fmpy",
    Opcode.FDIV: "frcpa", Opcode.FREM: "frem.call", Opcode.FNEG: "fneg",
    Opcode.FSQRT: "fsqrt.call", Opcode.FSIN: "fsin.call",
    Opcode.FCOS: "fcos.call", Opcode.FEXP: "fexp.call",
    Opcode.FLOG: "flog.call", Opcode.FABS: "fabs",
    Opcode.FFLOOR: "ffloor.call", Opcode.FPOW: "fpow.call",
    Opcode.I2D: "setf.sig+fcvt", Opcode.L2D: "setf.sig+fcvt",
    Opcode.D2I: "fcvt.fx+getf", Opcode.D2L: "fcvt.fx+getf",
    Opcode.TRUNC32: "mov",
}
